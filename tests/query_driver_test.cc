// QueryDriver + SearchBackend coverage: cross-backend agreement on
// found/scan counts, thread-count-independent work accounting for
// read-only streams, insert visibility, and the deterministic
// clean-vs-poisoned latency-proxy gap (measured lookup work) that turns
// the paper's loss metric into serving cost on a fixed seed.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attack/rmi_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"
#include "workload/query_driver.h"
#include "workload/search_backend.h"
#include "workload/workload.h"

namespace lispoison {
namespace {

KeySet TestKeys(std::int64_t n, std::uint64_t seed = 5) {
  Rng rng(seed);
  auto ks = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  EXPECT_TRUE(ks.ok());
  return *ks;
}

std::unique_ptr<SearchBackend> MakeBackend(BackendKind kind,
                                           const KeySet& ks) {
  BackendOptions opts;
  opts.rmi.target_model_size = 500;
  auto backend = CreateBackend(kind, ks, opts);
  EXPECT_TRUE(backend.ok()) << backend.status().message();
  return std::move(*backend);
}

DriverResult MustRun(SearchBackend* backend,
                     const std::vector<Operation>& ops,
                     const DriverOptions& options) {
  auto r = RunWorkload(backend, ops, options);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return std::move(*r);
}

TEST(SearchBackendTest, AllBackendsAgreeOnReadsAndScans) {
  const KeySet ks = TestKeys(4000);
  auto rmi = MakeBackend(BackendKind::kRmi, ks);
  auto btree = MakeBackend(BackendKind::kBTree, ks);
  auto binary = MakeBackend(BackendKind::kBinarySearch, ks);

  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const Key k = i % 2 == 0 ? ks.at(rng.UniformInt(0, ks.size() - 1))
                             : rng.UniformInt(0, 100 * 4000);
    const bool expect_found = ks.Contains(k);
    EXPECT_EQ(rmi->Lookup(k).found, expect_found);
    EXPECT_EQ(btree->Lookup(k).found, expect_found);
    EXPECT_EQ(binary->Lookup(k).found, expect_found);
  }
  for (int i = 0; i < 300; ++i) {
    const std::int64_t a = rng.UniformInt(0, ks.size() - 1);
    const std::int64_t b =
        std::min(ks.size() - 1, a + rng.UniformInt(0, 200));
    const Key lo = ks.at(a);
    const Key hi = ks.at(b);
    const std::int64_t expected = b - a + 1;  // Keys are ranks a..b.
    EXPECT_EQ(rmi->Scan(lo, hi).range_count, expected);
    EXPECT_EQ(btree->Scan(lo, hi).range_count, expected);
    EXPECT_EQ(binary->Scan(lo, hi).range_count, expected);
  }
}

TEST(SearchBackendTest, InsertsBecomeVisibleEverywhere) {
  const KeySet ks = TestKeys(1000);
  for (const BackendKind kind : {BackendKind::kRmi, BackendKind::kBTree,
                                 BackendKind::kBinarySearch}) {
    auto backend = MakeBackend(kind, ks);
    // A key in some interior gap.
    Key fresh = -1;
    for (std::int64_t i = 0; i + 1 < ks.size(); ++i) {
      if (ks.at(i + 1) - ks.at(i) > 1) {
        fresh = ks.at(i) + 1;
        break;
      }
    }
    ASSERT_NE(fresh, -1);
    EXPECT_FALSE(backend->Lookup(fresh).found);
    const auto before = backend->Scan(fresh - 1, fresh + 1);
    ASSERT_TRUE(backend->Insert(fresh).ok());
    EXPECT_TRUE(backend->Lookup(fresh).found);
    EXPECT_EQ(backend->Scan(fresh - 1, fresh + 1).range_count,
              before.range_count + 1);
    // Duplicate inserts are rejected, overlay and base alike.
    EXPECT_FALSE(backend->Insert(fresh).ok());
    EXPECT_FALSE(backend->Insert(ks.at(0)).ok());
    EXPECT_EQ(backend->overlay_size(), 1);
  }
}

TEST(QueryDriverTest, CountsAndFoundsAreExact) {
  const KeySet ks = TestKeys(2000);
  auto ops = GenerateOperations(ReadOnlyUniformWorkload(31), ks, 5000);
  ASSERT_TRUE(ops.ok());
  auto backend = MakeBackend(BackendKind::kBTree, ks);
  DriverOptions opts;
  opts.num_threads = 1;
  opts.measure_latency = true;
  const DriverResult r = MustRun(backend.get(), *ops, opts);
  EXPECT_EQ(r.total_ops, 5000);
  EXPECT_EQ(r.reads, 5000);
  EXPECT_EQ(r.read_found, 5000);  // Reads target stored keys.
  EXPECT_EQ(r.scans, 0);
  EXPECT_EQ(r.inserts, 0);
  EXPECT_EQ(r.latency.count(), 5000);
  EXPECT_EQ(r.read_latency.count(), 5000);
  EXPECT_GT(r.total_work, 0);
  EXPECT_GT(r.ThroughputOpsPerSec(), 0.0);
}

TEST(QueryDriverTest, WorkModelIsThreadCountIndependentForReadStreams) {
  const KeySet ks = TestKeys(3000);
  for (const WorkloadSpec& spec :
       {ReadOnlyUniformWorkload(41), RangeScanWorkload(41)}) {
    auto ops = GenerateOperations(spec, ks, 6000);
    ASSERT_TRUE(ops.ok());
    DriverOptions opts;
    opts.measure_latency = false;
    std::int64_t base_work = -1, base_scanned = -1;
    for (const int threads : {1, 2, 3, 8}) {
      auto backend = MakeBackend(BackendKind::kRmi, ks);
      opts.num_threads = threads;
      const DriverResult r = MustRun(backend.get(), *ops, opts);
      if (base_work < 0) {
        base_work = r.total_work;
        base_scanned = r.scanned_keys;
      } else {
        EXPECT_EQ(r.total_work, base_work)
            << spec.name << " with " << threads << " threads";
        EXPECT_EQ(r.scanned_keys, base_scanned);
      }
      EXPECT_EQ(r.total_ops, 6000);
    }
  }
}

TEST(QueryDriverTest, InsertMixGrowsTheOverlay) {
  const KeySet ks = TestKeys(2000);
  auto ops = GenerateOperations(ReadInsertMixWorkload(51), ks, 4000);
  ASSERT_TRUE(ops.ok());
  std::int64_t expected_inserts = 0;
  for (const Operation& op : *ops) {
    expected_inserts += op.type == OpType::kInsert;
  }
  auto backend = MakeBackend(BackendKind::kBinarySearch, ks);
  DriverOptions opts;
  opts.num_threads = 4;
  const DriverResult r = MustRun(backend.get(), *ops, opts);
  EXPECT_EQ(r.inserts, expected_inserts);
  // The stream's insert keys are unique and fresh, so every insert
  // lands even under concurrency.
  EXPECT_EQ(r.insert_failures, 0);
  EXPECT_EQ(backend->overlay_size(), expected_inserts);
  EXPECT_EQ(r.insert_latency.count(), expected_inserts);
}

TEST(SearchBackendTest, CompactionFoldsOverlayIntoBase) {
  // ROADMAP item: with BackendOptions::compact_threshold the overlay is
  // merged into the base structure (RMI retrained, B+Tree re-bulk-
  // loaded) whenever it fills up, so insert-heavy runs never degrade
  // into an ever-growing overlay binary search.
  const KeySet ks = TestKeys(2000, /*seed=*/63);
  for (const BackendKind kind : {BackendKind::kRmi, BackendKind::kBTree,
                                 BackendKind::kBinarySearch}) {
    BackendOptions opts;
    opts.rmi.target_model_size = 500;
    opts.compact_threshold = 64;
    // Deterministic escape hatch: compaction runs inline on the
    // inserting thread, so the merge/overlay counters below are exact.
    opts.sync_compaction = true;
    auto backend = CreateBackend(kind, ks, opts);
    ASSERT_TRUE(backend.ok()) << backend.status().message();
    const std::int64_t base0 = (*backend)->base_size();

    Rng rng(417);
    std::vector<Key> added;
    while (added.size() < 300) {
      const Key k = rng.UniformInt(0, 100 * 2000);
      if ((*backend)->Insert(k).ok()) added.push_back(k);
    }
    // 300 inserts at threshold 64: at least four merges ran, and the
    // surviving overlay is below one threshold's worth.
    EXPECT_GE((*backend)->compactions(), 4) << (*backend)->name();
    EXPECT_LT((*backend)->overlay_size(), 64) << (*backend)->name();
    EXPECT_EQ((*backend)->base_size() + (*backend)->overlay_size(),
              base0 + static_cast<std::int64_t>(added.size()))
        << (*backend)->name();
    // Every key — original or inserted, compacted or still in the
    // overlay — stays visible to reads and scans.
    for (const Key k : added) {
      EXPECT_TRUE((*backend)->Lookup(k).found) << (*backend)->name();
    }
    for (std::int64_t i = 0; i < ks.size(); i += 97) {
      EXPECT_TRUE((*backend)->Lookup(ks.at(i)).found) << (*backend)->name();
    }
    const auto scan = (*backend)->Scan(ks.at(0), ks.at(ks.size() - 1));
    std::int64_t added_inside = 0;
    for (const Key k : added) {
      added_inside += k >= ks.at(0) && k <= ks.at(ks.size() - 1);
    }
    EXPECT_EQ(scan.range_count, ks.size() + added_inside)
        << (*backend)->name();
  }
}

TEST(QueryDriverTest, CompactionPreservesInsertMixResults) {
  // Same deterministic single-threaded insert-heavy stream against a
  // compacting and a non-compacting backend: membership-derived results
  // (found counts, scanned keys, committed inserts) are identical —
  // compaction only restructures where keys live — while the compacting
  // backend actually merged and kept its overlay bounded.
  const KeySet ks = TestKeys(3000, /*seed=*/29);
  auto ops = GenerateOperations(ReadInsertMixWorkload(83), ks, 8000);
  ASSERT_TRUE(ops.ok());
  DriverOptions dopts;
  dopts.num_threads = 1;
  dopts.measure_latency = false;

  BackendOptions plain;
  plain.rmi.target_model_size = 500;
  BackendOptions compacting = plain;
  compacting.compact_threshold = 128;
  compacting.sync_compaction = true;  // Bit-stable single-threaded replay.

  auto a = CreateBackend(BackendKind::kRmi, ks, plain);
  auto b = CreateBackend(BackendKind::kRmi, ks, compacting);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const DriverResult ra = MustRun(a->get(), *ops, dopts);
  const DriverResult rb = MustRun(b->get(), *ops, dopts);

  EXPECT_EQ(ra.read_found, rb.read_found);
  EXPECT_EQ(ra.scanned_keys, rb.scanned_keys);
  EXPECT_EQ(ra.inserts, rb.inserts);
  EXPECT_EQ(ra.insert_failures, rb.insert_failures);
  EXPECT_GT((*b)->compactions(), 0);
  EXPECT_LT((*b)->overlay_size(), 128);
  EXPECT_EQ((*a)->overlay_size() + (*a)->base_size(),
            (*b)->overlay_size() + (*b)->base_size());
}

TEST(QueryDriverTest, PoisonedRmiDoesMoreLookupWorkThanClean) {
  // The acceptance gap, on a fixed seed with the exact work model (no
  // wall-clock flakiness): Algorithm 2's poisons inflate the RMI's
  // per-lookup probe count, while binary search is untouched.
  const KeySet clean = TestKeys(5000, /*seed=*/77);
  RmiAttackOptions attack;
  attack.poison_fraction = 0.10;
  attack.model_size = 500;
  attack.num_threads = 1;
  auto attacked = PoisonRmi(clean, attack);
  ASSERT_TRUE(attacked.ok()) << attacked.status().message();
  auto poisoned = clean.Union(attacked->AllPoisonKeys());
  ASSERT_TRUE(poisoned.ok());

  DriverOptions opts;
  opts.num_threads = 1;
  opts.measure_latency = false;

  auto measure = [&](BackendKind kind, const KeySet& ks) {
    auto ops = GenerateOperations(ReadOnlyUniformWorkload(88), ks, 8000);
    EXPECT_TRUE(ops.ok());
    auto backend = MakeBackend(kind, ks);
    return MustRun(backend.get(), *ops, opts);
  };

  const DriverResult clean_rmi = measure(BackendKind::kRmi, clean);
  const DriverResult poisoned_rmi = measure(BackendKind::kRmi, *poisoned);
  EXPECT_GE(poisoned_rmi.MeanWork(), clean_rmi.MeanWork());
  EXPECT_GT(poisoned_rmi.MeanWork(), 1.05 * clean_rmi.MeanWork())
      << "poisoning should visibly inflate mean lookup work";
  EXPECT_GE(poisoned_rmi.max_work, clean_rmi.max_work);

  // Control: binary search work grows only by the log2 of the ~10%
  // larger array — bounded by one extra comparison per lookup.
  const DriverResult clean_bin = measure(BackendKind::kBinarySearch, clean);
  const DriverResult poisoned_bin =
      measure(BackendKind::kBinarySearch, *poisoned);
  EXPECT_LE(poisoned_bin.MeanWork(), clean_bin.MeanWork() + 1.0);
}

TEST(QueryDriverTest, RejectsBadOptions) {
  const KeySet ks = TestKeys(100);
  auto backend = MakeBackend(BackendKind::kBinarySearch, ks);
  std::vector<Operation> ops;
  DriverOptions opts;
  opts.batch_size = 0;
  EXPECT_EQ(RunWorkload(backend.get(), ops, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts.batch_size = 16;
  EXPECT_EQ(RunWorkload(nullptr, ops, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts.latency_sample_every = 0;
  EXPECT_EQ(RunWorkload(backend.get(), ops, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts.latency_sample_every = 1;
  opts.read_group = 0;
  EXPECT_EQ(RunWorkload(backend.get(), ops, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts.read_group = 1;
  // Empty stream is fine.
  EXPECT_TRUE(RunWorkload(backend.get(), ops, opts).ok());
}

TEST(QueryDriverTest, BatchedReadDispatchMatchesScalarResults) {
  // read_group > 1 routes consecutive reads through LookupBatch (the
  // prefetch-overlapped path). Everything derived from per-key results
  // — found counts, work totals, max work, scan/insert accounting —
  // must be bit-identical to scalar dispatch; only the latency
  // *sampling* semantics change (group mean instead of per-op).
  const KeySet ks = TestKeys(3000, /*seed=*/19);
  for (const WorkloadSpec& spec :
       {ReadOnlyUniformWorkload(23), ZipfianReadHeavyWorkload(23)}) {
    auto ops = GenerateOperations(spec, ks, 6000);
    ASSERT_TRUE(ops.ok());
    for (const BackendKind kind :
         {BackendKind::kRmi, BackendKind::kBinarySearch}) {
      auto scalar_backend = MakeBackend(kind, ks);
      auto batched_backend = MakeBackend(kind, ks);
      DriverOptions scalar;
      scalar.num_threads = 1;
      scalar.measure_latency = false;
      DriverOptions batched = scalar;
      batched.read_group = 16;
      const DriverResult rs = MustRun(scalar_backend.get(), *ops, scalar);
      const DriverResult rb = MustRun(batched_backend.get(), *ops, batched);
      EXPECT_EQ(rb.reads, rs.reads) << spec.name;
      EXPECT_EQ(rb.read_found, rs.read_found) << spec.name;
      EXPECT_EQ(rb.total_work, rs.total_work) << spec.name;
      EXPECT_EQ(rb.max_work, rs.max_work) << spec.name;
      EXPECT_EQ(rb.inserts, rs.inserts) << spec.name;
      EXPECT_EQ(rb.insert_failures, rs.insert_failures) << spec.name;
    }
  }
  // With timing on, every op still lands in the histograms (as its
  // group's mean), so counts match per-op timing exactly.
  auto ops = GenerateOperations(ReadOnlyUniformWorkload(29), ks, 5000);
  ASSERT_TRUE(ops.ok());
  auto backend = MakeBackend(BackendKind::kRmi, ks);
  DriverOptions timed;
  timed.num_threads = 1;
  timed.read_group = 16;
  const DriverResult rt = MustRun(backend.get(), *ops, timed);
  EXPECT_EQ(rt.latency.count(), 5000);
  EXPECT_EQ(rt.read_latency.count(), 5000);
  EXPECT_GT(rt.latency.Mean(), 0.0);
}

TEST(QueryDriverTest, BatchedTimingMatchesFullSamplingWithinTolerance) {
  // ROADMAP item: time every k-th op instead of all of them. On a
  // deterministic read-only workload the sampled run must (a) record
  // exactly ceil(total / k) latencies — the subset is keyed off the
  // global op index, so it is shard-independent — (b) leave the exact
  // work/found accounting untouched, and (c) produce a histogram whose
  // median and mean agree with full sampling within a loose factor
  // (both runs measure the same per-op code path; only scheduling noise
  // differs).
  const KeySet ks = TestKeys(2000);
  const std::int64_t total = 40000;
  auto ops = GenerateOperations(ReadOnlyUniformWorkload(77), ks, total);
  ASSERT_TRUE(ops.ok());
  auto backend = MakeBackend(BackendKind::kBinarySearch, ks);

  DriverOptions full;
  full.num_threads = 1;
  const DriverResult rf = MustRun(backend.get(), *ops, full);

  DriverOptions sampled = full;
  sampled.latency_sample_every = 7;
  const DriverResult rs = MustRun(backend.get(), *ops, sampled);

  EXPECT_EQ(rf.latency.count(), total);
  EXPECT_EQ(rs.latency.count(), (total + 6) / 7);
  EXPECT_EQ(rs.read_latency.count(), rs.latency.count());
  // Work/found accounting is independent of the timing mode.
  EXPECT_EQ(rf.total_work, rs.total_work);
  EXPECT_EQ(rf.read_found, rs.read_found);
  EXPECT_EQ(rf.max_work, rs.max_work);
  // Distribution agreement: medians and means within 3x (latencies on
  // a shared machine vary, but 5.7k samples of the same deterministic
  // op stream cannot drift an order of magnitude).
  ASSERT_GT(rf.latency.P50(), 0);
  ASSERT_GT(rs.latency.P50(), 0);
  const double p50_ratio = static_cast<double>(rs.latency.P50()) /
                           static_cast<double>(rf.latency.P50());
  EXPECT_GT(p50_ratio, 1.0 / 3.0);
  EXPECT_LT(p50_ratio, 3.0);
  const double mean_ratio = rs.latency.Mean() / rf.latency.Mean();
  EXPECT_GT(mean_ratio, 1.0 / 3.0);
  EXPECT_LT(mean_ratio, 3.0);
  // The sampled subset is shard-independent: the same k on 3 shards
  // records the same number of values.
  DriverOptions sharded = sampled;
  sharded.num_threads = 3;
  const DriverResult r3 = MustRun(backend.get(), *ops, sharded);
  EXPECT_EQ(r3.latency.count(), rs.latency.count());
}

}  // namespace
}  // namespace lispoison
