#include "common/ascii_plot.h"

#include <gtest/gtest.h>

#include <sstream>

namespace lispoison {
namespace {

TEST(RenderKeyHistogramTest, MarksPrimaryAndOverlay) {
  std::ostringstream os;
  RenderKeyHistogram(os, {0, 1, 2}, {8, 9}, 0, 9, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("----------"), std::string::npos);
}

TEST(RenderKeyHistogramTest, StackHeightMatchesDensity) {
  std::ostringstream os;
  // Three keys in one bucket: three rows of output plus the axis.
  RenderKeyHistogram(os, {0, 0, 0}, {}, 0, 9, 10);
  std::istringstream lines(os.str());
  std::string line;
  int rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, 4);  // 3 density levels + axis.
}

TEST(RenderKeyHistogramTest, DegenerateInputsAreNoOps) {
  std::ostringstream os;
  RenderKeyHistogram(os, {1}, {}, 0, 9, 0);    // width < 1
  RenderKeyHistogram(os, {1}, {}, 9, 0, 10);   // hi < lo
  EXPECT_TRUE(os.str().empty());
}

TEST(RenderKeyHistogramTest, OutOfRangeKeysClampToEdges) {
  std::ostringstream os;
  RenderKeyHistogram(os, {-100, 500}, {}, 0, 9, 10);
  // Should not crash; both keys land in edge buckets.
  EXPECT_FALSE(os.str().empty());
}

TEST(RenderCdfStaircaseTest, MonotoneStaircase) {
  std::ostringstream os;
  RenderCdfStaircase(os, {0, 10, 20, 30, 40, 50}, 20, 6);
  const std::string out = os.str();
  EXPECT_NE(out.find('o'), std::string::npos);
  // First output row (highest rank) contains the rightmost mark; last
  // content row contains the leftmost. Verify column of 'o' in the top
  // row exceeds that of the bottom content row.
  std::istringstream lines(out);
  std::string first, line, last;
  std::getline(lines, first);
  last = first;
  while (std::getline(lines, line)) {
    if (line.find('o') != std::string::npos) last = line;
  }
  EXPECT_GT(first.find('o'), last.find('o'));
}

TEST(RenderCdfStaircaseTest, DegenerateInputsAreNoOps) {
  std::ostringstream os;
  RenderCdfStaircase(os, {}, 10, 5);
  RenderCdfStaircase(os, {1, 2}, 0, 5);
  RenderCdfStaircase(os, {1, 2}, 10, 0);
  EXPECT_TRUE(os.str().empty());
}

TEST(RenderCdfStaircaseTest, SingleKeyRenders) {
  std::ostringstream os;
  RenderCdfStaircase(os, {42}, 10, 3);
  EXPECT_NE(os.str().find('o'), std::string::npos);
}

}  // namespace
}  // namespace lispoison
