// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Concurrency and exactness tests for the runtime telemetry layer
// (common/telemetry.h): slab aggregation across forced interval
// boundaries, thread-exit slot recycling, interval-histogram/total
// identities, trace-ring drop-oldest under a concurrent exporter, and
// the runtime kill switch. The registry and trace session are
// process-global, so every test asserts on *deltas* (sampler baselines
// or before/after Value() differences), never on absolute values.
// The whole binary also runs under the TSan CI leg: the concurrent
// tests double as data-race probes for the relaxed-atomic slabs and the
// per-slot seqlock protocol.

#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace lispoison {
namespace {

TEST(TelemetryRegistryTest, CounterAggregatesExactlyAcrossThreads) {
  TelemetryRegistry& registry = TelemetryRegistry::Global();
  TelemetryCounter* counter =
      registry.GetCounter("test.counter_aggregation");
  EXPECT_EQ(counter, registry.GetCounter("test.counter_aggregation"))
      << "same name must return the same instrument";

  const std::int64_t before = counter->Value();
  constexpr int kThreads = 8;
  constexpr std::int64_t kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (std::int64_t i = 0; i < kAddsPerThread; ++i) counter->Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->Value() - before, kThreads * kAddsPerThread);
}

TEST(TelemetryRegistryTest, SamplerIntervalDeltasSumToTotals) {
  TelemetryRegistry& registry = TelemetryRegistry::Global();
  TelemetryCounter* counter = registry.GetCounter("test.interval_counter");
  TelemetryHistogram* hist = registry.GetHistogram("test.interval_hist");

  TelemetrySampler sampler;
  sampler.Start();  // Boundary-driven: deterministic row count.

  // Three bursts with a forced boundary between each, the middle one
  // concurrent across 8 threads so boundaries land mid-recording too.
  counter->Add(7);
  hist->Record(100);
  sampler.SampleNow();

  constexpr int kThreads = 8;
  constexpr std::int64_t kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, hist] {
      for (std::int64_t i = 0; i < kOps; ++i) {
        counter->Add(2);
        hist->Record(i % 4096);
      }
    });
  }
  for (auto& th : threads) th.join();
  sampler.SampleNow();

  counter->Add(1);
  sampler.Stop();  // Takes the final boundary row.

  const std::vector<TelemetryIntervalRow> rows = sampler.Rows();
  ASSERT_GE(rows.size(), 3u);

  std::int64_t counter_sum = 0;
  std::int64_t hist_sum = 0;
  std::int64_t prev_end = rows.front().t_start_ns;
  for (const TelemetryIntervalRow& row : rows) {
    EXPECT_EQ(row.t_start_ns, prev_end) << "rows must be contiguous";
    EXPECT_GE(row.t_end_ns, row.t_start_ns);
    prev_end = row.t_end_ns;
    for (const auto& c : row.counter_deltas) {
      EXPECT_GE(c.value, 0) << c.name << " went backwards";
      if (c.name == "test.interval_counter") counter_sum += c.value;
    }
    for (const auto& h : row.histograms) {
      EXPECT_EQ(h.count, h.histogram.count())
          << "reconstructed histogram count drifted from bucket deltas";
      if (h.name == "test.interval_hist") hist_sum += h.count;
    }
  }

  const MetricsSnapshot totals = sampler.TotalsSinceStart();
  for (const auto& c : totals.counters) {
    if (c.name == "test.interval_counter") {
      EXPECT_EQ(c.value, counter_sum)
          << "interval counter deltas must sum to the run total";
      EXPECT_EQ(c.value, 7 + kThreads * kOps * 2 + 1);
    }
  }
  for (const auto& h : totals.histograms) {
    if (h.name == "test.interval_hist") {
      EXPECT_EQ(h.count, hist_sum)
          << "interval histogram counts must sum to the run total";
      EXPECT_EQ(h.count, 1 + kThreads * kOps);
    }
  }
}

TEST(TelemetryRegistryTest, GaugeSignedDeltasAggregateExactly) {
  TelemetryGauge* gauge =
      TelemetryRegistry::Global().GetGauge("test.gauge_levels");
  const std::int64_t before = gauge->Value();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([gauge] {
      for (int i = 0; i < 1000; ++i) {
        gauge->Add(3);
        gauge->Add(-2);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(gauge->Value() - before, 4 * 1000 * (3 - 2));
}

TEST(TelemetryRegistryTest, ThreadExitRecyclingKeepsTotals) {
  TelemetryRegistry& registry = TelemetryRegistry::Global();
  TelemetryCounter* counter = registry.GetCounter("test.recycling");
  const std::int64_t before = counter->Value();
  const std::int64_t slots_before = registry.slots_created();

  // Waves of short-lived threads, each recording then exiting. Slot
  // recycling must (a) preserve every count a dead thread recorded and
  // (b) bound the slot arena: each wave reuses the previous wave's
  // freed slots instead of minting new ones.
  constexpr int kWaves = 16;
  constexpr int kThreadsPerWave = 4;
  for (int w = 0; w < kWaves; ++w) {
    std::vector<std::thread> wave;
    for (int t = 0; t < kThreadsPerWave; ++t) {
      wave.emplace_back([counter] {
        for (int i = 0; i < 500; ++i) counter->Add(1);
      });
    }
    for (auto& th : wave) th.join();
  }
  EXPECT_EQ(counter->Value() - before, kWaves * kThreadsPerWave * 500)
      << "slot recycling lost counts recorded by exited threads";
  EXPECT_LE(registry.slots_created() - slots_before, kThreadsPerWave + 1)
      << "waves of exiting threads must recycle slots, not mint new ones";
}

TEST(TelemetryRegistryTest, ObservableGaugePollsAtSnapshotAndUnregisters) {
  TelemetryRegistry& registry = TelemetryRegistry::Global();
  std::atomic<std::int64_t> level{11};
  {
    ObservableGauge gauge("test.observable", [&level] {
      return level.load(std::memory_order_relaxed);
    });
    ObservableGauge sibling("test.observable", [] { return 100; });
    MetricsSnapshot snap = registry.Snapshot();
    bool found = false;
    for (const auto& o : snap.observables) {
      if (o.name == "test.observable") {
        EXPECT_EQ(o.value, 111) << "same-name observables must sum";
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  // Both destroyed: the name must be gone from the next snapshot.
  for (const auto& o : registry.Snapshot().observables) {
    EXPECT_NE(o.name, "test.observable");
  }
}

TEST(TelemetryRegistryTest, DisabledRegistryRecordsNothing) {
  TelemetryRegistry& registry = TelemetryRegistry::Global();
  TelemetryCounter* counter = registry.GetCounter("test.kill_switch");
  TelemetryHistogram* hist = registry.GetHistogram("test.kill_switch_hist");
  const std::int64_t c_before = counter->Value();
  const std::int64_t h_before = hist->Count();
  registry.SetEnabled(false);
  counter->Add(5);
  hist->Record(42);
  registry.SetEnabled(true);
  EXPECT_EQ(counter->Value(), c_before);
  EXPECT_EQ(hist->Count(), h_before);
  counter->Add(5);
  EXPECT_EQ(counter->Value(), c_before + 5);
}

TEST(TraceSessionTest, RingDropsOldestAndExportBalancesSpans) {
  TraceSession& session = TraceSession::Global();
  session.Start(/*events_per_thread=*/64);

  // Overflow one ring several times over from this thread: the ring
  // must drop the oldest events (never block, never crash) and the
  // exporter must still emit only balanced B/E pairs.
  for (int i = 0; i < 400; ++i) {
    TraceSpan span(TraceCategory::kBench, "overflow_span", i);
    TraceInstant(TraceCategory::kBench, "overflow_tick", i);
  }
  session.Stop();
  EXPECT_GT(session.dropped(), 0) << "400x3 events cannot fit in 64 slots";

  std::ostringstream out;
  session.WriteJson(&out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("overflow_"), std::string::npos);

  // Count phases per tid with a tiny scan (the committed python
  // validator does this properly; here we just pin B/E balance).
  std::int64_t begins = 0;
  std::int64_t ends = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":", pos)) !=
                            std::string::npos;
       ++pos) {
    const char phase = json[pos + 6];
    if (phase == 'B') ++begins;
    if (phase == 'E') ++ends;
  }
  EXPECT_EQ(begins, ends) << "exported spans must balance";
}

TEST(TraceSessionTest, ConcurrentExportNeverTearsUnderRecording) {
  TraceSession& session = TraceSession::Global();
  session.Start(/*events_per_thread=*/128);

  // Writers hammer their rings while an exporter snapshots repeatedly:
  // the per-slot seqlock must hand the exporter only fully written
  // slots (checked structurally below; TSan checks the memory model).
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      std::int64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        TraceSpan span(TraceCategory::kServing, "churn_span", i++);
        TraceInstant(TraceCategory::kDriver, "churn_tick", i);
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    std::ostringstream out;
    session.WriteJson(&out);
    const std::string json = out.str();
    // Every emitted name must be one of the two literals — a torn slot
    // would surface as a mangled pointer or mixed phase/name pairing.
    for (std::size_t pos = 0; (pos = json.find("\"name\":\"churn", pos)) !=
                              std::string::npos;
         ++pos) {
      const bool ok =
          json.compare(pos, 19, "\"name\":\"churn_span\"") == 0 ||
          json.compare(pos, 19, "\"name\":\"churn_tick\"") == 0;
      ASSERT_TRUE(ok) << json.substr(pos, 32);
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  session.Stop();
}

TEST(TelemetryRegistryTest, SamplerBackgroundThreadProducesRows) {
  TelemetryCounter* counter =
      TelemetryRegistry::Global().GetCounter("test.background_rows");
  TelemetrySampler sampler;
  sampler.Start(/*interval_ms=*/5);
  for (int i = 0; i < 50; ++i) {
    counter->Add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  const auto rows = sampler.Rows();
  EXPECT_GE(rows.size(), 2u) << "a 5ms sampler over 50ms must tick";
  std::int64_t sum = 0;
  for (const auto& row : rows) {
    for (const auto& c : row.counter_deltas) {
      if (c.name == "test.background_rows") sum += c.value;
    }
  }
  EXPECT_EQ(sum, 50);
}

}  // namespace
}  // namespace lispoison
