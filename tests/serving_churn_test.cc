// Concurrent churn coverage for the sharded serving engine: reader
// threads race a writer doing inserts (and the background maintenance
// thread doing compactions) and must always observe a coherent
// pre-or-post-publish snapshot — never a torn state. Also pins the
// "no insert pays a retrain" contract: with async compaction the
// inline-compaction counter stays zero and the largest overlay any
// insert copied stays far below the base size an inline rebuild would
// touch. This binary runs under the ThreadSanitizer CI leg.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/telemetry.h"
#include "data/generators.h"
#include "data/keyset.h"
#include "workload/query_driver.h"
#include "workload/search_backend.h"
#include "workload/workload.h"

namespace lispoison {
namespace {

KeySet TestKeys(std::int64_t n, std::uint64_t seed = 211) {
  Rng rng(seed);
  auto ks = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  EXPECT_TRUE(ks.ok());
  return *ks;
}

/// Deterministic fresh keys in a shuffled keyspace order, so shards
/// take interleaved insert load (an ascending order would hammer shard
/// 0's overlay while the 1-core maintenance thread lags behind).
std::vector<Key> FreshKeys(const KeySet& ks, std::int64_t want) {
  std::vector<std::int64_t> gap_ranks;
  for (std::int64_t i = 0; i + 1 < ks.size(); ++i) {
    if (ks.at(i + 1) - ks.at(i) > 1) gap_ranks.push_back(i);
  }
  Rng rng(4242);  // Fisher-Yates with the repo Rng: fully deterministic.
  for (std::int64_t i = static_cast<std::int64_t>(gap_ranks.size()) - 1;
       i > 0; --i) {
    std::swap(gap_ranks[static_cast<std::size_t>(i)],
              gap_ranks[static_cast<std::size_t>(rng.UniformInt(0, i))]);
  }
  std::vector<Key> fresh;
  for (const std::int64_t i : gap_ranks) {
    if (static_cast<std::int64_t>(fresh.size()) >= want) break;
    fresh.push_back(ks.at(i) + 1);
  }
  return fresh;
}

TEST(ServingChurnTest, ReadersNeverObserveTornStateUnderChurn) {
  const std::int64_t n = 20000;
  const KeySet ks = TestKeys(n);
  BackendOptions opts;
  opts.rmi.target_model_size = 500;
  opts.num_shards = 4;
  opts.compact_threshold = 256;  // Async: background maintenance thread.
  auto backend = CreateBackend(BackendKind::kRmi, ks, opts);
  ASSERT_TRUE(backend.ok()) << backend.status().message();

  const std::vector<Key> fresh = FreshKeys(ks, 4000);
  ASSERT_GE(static_cast<std::int64_t>(fresh.size()), 3000);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> reads_done{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        // Base keys are present in every snapshot ever published —
        // before, during, and after any compaction — so a miss here
        // means a reader saw a torn or reclaimed state.
        const Key base_key = ks.at(rng.UniformInt(0, ks.size() - 1));
        if (!(*backend)->Lookup(base_key).found) {
          torn.store(true);
          return;
        }
        // Cross-shard scans must stay stitched together as well; every
        // published snapshot holds at least the base keys of its range.
        const std::int64_t a = rng.UniformInt(0, ks.size() - 201);
        const auto scan = (*backend)->Scan(ks.at(a), ks.at(a + 200));
        if (scan.range_count < 201) {
          torn.store(true);
          return;
        }
        reads_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: every fresh key lands while the readers run; each insert is
  // an overlay copy + pointer publish, with compactions retraining the
  // shard substrates off-thread underneath the readers.
  for (const Key k : fresh) {
    ASSERT_TRUE((*backend)->Insert(k).ok());
  }
  (*backend)->WaitForMaintenance();
  stop.store(true);
  for (auto& r : readers) r.join();

  EXPECT_FALSE(torn.load()) << "a reader observed a torn snapshot";
  EXPECT_GT(reads_done.load(), 0);

  // Quiesced state: everything inserted is visible, nothing was lost
  // across the compaction publishes.
  for (const Key k : fresh) {
    EXPECT_TRUE((*backend)->Lookup(k).found);
  }
  EXPECT_EQ((*backend)->base_size() + (*backend)->overlay_size(),
            n + static_cast<std::int64_t>(fresh.size()));
  // Compactions ran, and every one of them ran on the maintenance
  // thread: no insert ever paid a rebuild inline.
  EXPECT_GE((*backend)->compactions(), 1);
  EXPECT_EQ((*backend)->inline_compactions(), 0);
  // Per-insert work bound (the publish-size high-water mark): the
  // largest overlay an insert copied must sit near the compaction
  // threshold, far below the per-shard base an inline retrain touches.
  EXPECT_GT((*backend)->max_publish_overlay(), 0);
  EXPECT_LT((*backend)->max_publish_overlay() * 4,
            (*backend)->base_size() / (*backend)->num_shards());
}

TEST(ServingChurnTest, TelemetryHotReadPathStaysLockFreeUnderChurn) {
  // The telemetry-hot arm of the churn test: metrics, tracing, AND a
  // background sampler all run while readers race the writer and the
  // maintenance thread. The load-bearing assertion is implicit — the
  // read path's WriterMutex tripwire aborts the process if any lookup
  // or scan ever takes a shard lock, so telemetry on that path must be
  // mutex-free or this test dies, not fails. The explicit assertions
  // pin that the instruments actually moved and the sampler rows stayed
  // contiguous while everything churned. TSan leg covers the memory
  // model of the relaxed slabs + trace seqlocks under real serving load.
  const std::int64_t n = 20000;
  const KeySet ks = TestKeys(n, /*seed=*/31);
  BackendOptions opts;
  opts.rmi.target_model_size = 500;
  opts.num_shards = 4;
  opts.compact_threshold = 256;
  auto backend = CreateBackend(BackendKind::kRmi, ks, opts);
  ASSERT_TRUE(backend.ok()) << backend.status().message();

  const std::vector<Key> fresh = FreshKeys(ks, 3000);
  ASSERT_GE(static_cast<std::int64_t>(fresh.size()), 2000);

  TelemetryRegistry& registry = TelemetryRegistry::Global();
  TelemetryCounter* lookups = registry.GetCounter("serving.lookups");
  TelemetryCounter* compactions = registry.GetCounter("serving.compactions");
  const std::int64_t lookups_before = lookups->Value();
  const std::int64_t compactions_before = compactions->Value();

  TraceSession::Global().Start(/*events_per_thread=*/1024);
  TelemetrySampler sampler;
  sampler.Start(/*interval_ms=*/5);

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(3000 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        const Key base_key = ks.at(rng.UniformInt(0, ks.size() - 1));
        if (!(*backend)->Lookup(base_key).found) {
          torn.store(true);
          return;
        }
        const std::int64_t a = rng.UniformInt(0, ks.size() - 101);
        if ((*backend)->Scan(ks.at(a), ks.at(a + 100)).range_count < 101) {
          torn.store(true);
          return;
        }
      }
    });
  }
  for (const Key k : fresh) {
    ASSERT_TRUE((*backend)->Insert(k).ok());
  }
  (*backend)->WaitForMaintenance();
  stop.store(true);
  for (auto& r : readers) r.join();
  sampler.Stop();
  TraceSession::Global().Stop();

  EXPECT_FALSE(torn.load()) << "a reader observed a torn snapshot";
  EXPECT_EQ((*backend)->inline_compactions(), 0);

  // The instruments moved with the serving engine, exactly.
  EXPECT_GT(lookups->Value() - lookups_before, 0);
  EXPECT_EQ(compactions->Value() - compactions_before,
            (*backend)->compactions());

  // Sampler rows stayed contiguous under concurrent recording, and
  // their lookup deltas telescope to the counter's movement.
  const std::vector<TelemetryIntervalRow> rows = sampler.Rows();
  ASSERT_GE(rows.size(), 1u);
  std::int64_t lookup_delta_sum = 0;
  std::int64_t prev_end = rows.front().t_start_ns;
  for (const TelemetryIntervalRow& row : rows) {
    EXPECT_EQ(row.t_start_ns, prev_end);
    prev_end = row.t_end_ns;
    for (const auto& c : row.counter_deltas) {
      EXPECT_GE(c.value, 0) << c.name;
      if (c.name == "serving.lookups") lookup_delta_sum += c.value;
    }
  }
  EXPECT_EQ(lookup_delta_sum, lookups->Value() - lookups_before);

  // Compaction spans from the maintenance thread made it into the ring.
  EXPECT_GT(TraceSession::Global().recorded(), 0);
}

TEST(ServingChurnTest, AsyncCompactionKeepsInsertsRebuildFree) {
  // Same insert-heavy stream through the driver against a sync and an
  // async backend: identical membership outcomes, but only the sync
  // run charges retrains to inserting threads.
  const KeySet ks = TestKeys(30000, /*seed=*/67);
  auto ops = GenerateOperations(InsertHeavyWorkload(101), ks, 12000);
  ASSERT_TRUE(ops.ok());

  BackendOptions sync_opts;
  sync_opts.rmi.target_model_size = 500;
  sync_opts.num_shards = 2;
  sync_opts.compact_threshold = 256;
  sync_opts.sync_compaction = true;
  BackendOptions async_opts = sync_opts;
  async_opts.sync_compaction = false;

  auto sync_backend = CreateBackend(BackendKind::kRmi, ks, sync_opts);
  auto async_backend = CreateBackend(BackendKind::kRmi, ks, async_opts);
  ASSERT_TRUE(sync_backend.ok());
  ASSERT_TRUE(async_backend.ok());

  DriverOptions dopts;
  dopts.num_threads = 2;
  dopts.measure_latency = false;
  auto rs = RunWorkload(sync_backend->get(), *ops, dopts);
  auto ra = RunWorkload(async_backend->get(), *ops, dopts);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(ra.ok());
  (*async_backend)->WaitForMaintenance();

  // Membership outcomes match: the stream's insert keys are fresh and
  // unique, so every insert commits in both modes.
  EXPECT_EQ(ra->inserts, rs->inserts);
  EXPECT_EQ(ra->insert_failures, 0);
  EXPECT_EQ(rs->insert_failures, 0);
  EXPECT_EQ((*async_backend)->base_size() + (*async_backend)->overlay_size(),
            (*sync_backend)->base_size() + (*sync_backend)->overlay_size());

  // Both modes compacted under this insert pressure…
  EXPECT_GE((*sync_backend)->compactions(), 2);
  EXPECT_GE((*async_backend)->compactions(), 1);
  // …but the sync run charged them to inserting threads while the
  // async run charged none.
  EXPECT_EQ((*sync_backend)->inline_compactions(),
            (*sync_backend)->compactions());
  EXPECT_EQ((*async_backend)->inline_compactions(), 0);
}

TEST(ServingChurnTest, SingleShardStillCompactsOffThread) {
  // Satellite invariant: even num_shards=1 routes compaction through
  // the maintenance thread by default; sync_compaction is an explicit
  // escape hatch, not the single-shard default.
  const KeySet ks = TestKeys(8000, /*seed=*/5);
  BackendOptions opts;
  opts.rmi.target_model_size = 500;
  opts.num_shards = 1;
  opts.compact_threshold = 128;
  auto backend = CreateBackend(BackendKind::kRmi, ks, opts);
  ASSERT_TRUE(backend.ok());
  const std::vector<Key> fresh = FreshKeys(ks, 600);
  ASSERT_GE(static_cast<std::int64_t>(fresh.size()), 400);
  for (const Key k : fresh) {
    ASSERT_TRUE((*backend)->Insert(k).ok());
  }
  (*backend)->WaitForMaintenance();
  EXPECT_GE((*backend)->compactions(), 1);
  EXPECT_EQ((*backend)->inline_compactions(), 0);
  EXPECT_LT((*backend)->overlay_size(), 128);
  for (const Key k : fresh) {
    EXPECT_TRUE((*backend)->Lookup(k).found);
  }
}

}  // namespace
}  // namespace lispoison
