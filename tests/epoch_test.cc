// Epoch-based reclamation coverage: guard nesting, deferred frees
// pinned by active readers, reclamation after quiescence, slot
// recycling across short-lived threads, and a swap/read stress run
// whose deleter scribbles a poison value so use-after-free surfaces as
// an assertion (and as a race under the TSan CI leg).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/epoch.h"

namespace lispoison {
namespace {

constexpr std::uint64_t kLiveMagic = 0xAB12CD34EF56AB78ULL;
constexpr std::uint64_t kDeadMagic = 0xDEADDEADDEADDEADULL;

struct Payload {
  std::uint64_t magic = kLiveMagic;
  std::uint64_t value = 0;
};

TEST(EpochTest, RetireWithoutActiveReadersFreesImmediately) {
  EpochDomain& domain = EpochDomain::Global();
  const std::int64_t reclaimed_before = domain.reclaimed();
  std::atomic<int> freed{0};
  for (int i = 0; i < 8; ++i) {
    domain.Retire([&freed] { freed.fetch_add(1); });
  }
  // Retire() reclaims opportunistically; with no guard live anywhere in
  // this (single-threaded) test, every deleter has already run.
  domain.TryReclaim();
  EXPECT_EQ(freed.load(), 8);
  EXPECT_GE(domain.reclaimed(), reclaimed_before + 8);
}

TEST(EpochTest, ActiveReaderPinsRetiredObject) {
  EpochDomain& domain = EpochDomain::Global();
  std::atomic<Payload*> published{new Payload{kLiveMagic, 1}};
  std::atomic<bool> freed{false};

  std::mutex mu;
  std::condition_variable cv;
  int phase = 0;  // 0 = starting, 1 = reader in guard, 2 = release.

  std::thread reader([&] {
    EpochDomain::Guard guard(domain);
    Payload* p = published.load(std::memory_order_seq_cst);
    EXPECT_EQ(p->magic, kLiveMagic);
    {
      std::unique_lock<std::mutex> lock(mu);
      phase = 1;
      cv.notify_all();
      cv.wait(lock, [&] { return phase == 2; });
    }
    // Still inside the guard: the pointer must still be intact even
    // though the writer retired it long ago.
    EXPECT_EQ(p->magic, kLiveMagic);
    EXPECT_EQ(p->value, 1u);
  });

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return phase == 1; });
  }
  // Writer side: swap and retire while the reader holds the old object.
  Payload* old = published.exchange(new Payload{kLiveMagic, 2});
  domain.Retire([old, &freed] {
    old->magic = kDeadMagic;
    delete old;
    freed.store(true);
  });
  domain.TryReclaim();
  EXPECT_FALSE(freed.load()) << "retired object freed under a live guard";
  EXPECT_GE(domain.limbo_size(), 1);

  {
    std::unique_lock<std::mutex> lock(mu);
    phase = 2;
    cv.notify_all();
  }
  reader.join();
  domain.TryReclaim();
  EXPECT_TRUE(freed.load());
  delete published.load();
}

TEST(EpochTest, GuardsNestWithoutDeadlockOrEarlyRelease) {
  EpochDomain& domain = EpochDomain::Global();
  std::atomic<Payload*> published{new Payload{kLiveMagic, 7}};
  std::atomic<bool> freed{false};
  {
    EpochDomain::Guard outer(domain);
    Payload* p = published.load();
    {
      EpochDomain::Guard inner(domain);  // No-op on the same thread.
      EXPECT_EQ(p->value, 7u);
    }
    // Inner guard destroyed; the outer section must still pin p. Retire
    // from another thread (the reclaimer scans all slots, including
    // this thread's) and verify nothing frees.
    std::thread writer([&] {
      Payload* old = published.exchange(new Payload{kLiveMagic, 8});
      domain.Retire([old, &freed] {
        delete old;
        freed.store(true);
      });
      domain.TryReclaim();
    });
    writer.join();
    EXPECT_FALSE(freed.load());
    EXPECT_EQ(p->magic, kLiveMagic);
    EXPECT_EQ(p->value, 7u);
  }
  domain.TryReclaim();
  EXPECT_TRUE(freed.load());
  delete published.load();
}

TEST(EpochTest, SlotsRecycleAcrossShortLivedThreads) {
  EpochDomain& domain = EpochDomain::Global();
  // Prime: make sure at least one slab exists before measuring.
  { EpochDomain::Guard guard(domain); }
  const std::int64_t before = domain.slots_created();
  for (int i = 0; i < 32; ++i) {
    std::thread t([&] { EpochDomain::Guard guard(domain); });
    t.join();
  }
  // Sequential threads return their slot at exit and the next thread
  // reuses it, so 32 thread lifetimes cost at most one slab of growth
  // (allocated only if the free list happened to be empty).
  EXPECT_LE(domain.slots_created() - before, 64);
}

TEST(EpochTest, ConcurrentSwapAndReadStress) {
  EpochDomain& domain = EpochDomain::Global();
  std::atomic<Payload*> published{new Payload{kLiveMagic, 0}};
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochDomain::Guard guard(domain);
        Payload* p = published.load(std::memory_order_seq_cst);
        // A freed payload was poisoned first; observing kDeadMagic (or
        // garbage) here is a reclamation bug.
        ASSERT_EQ(p->magic, kLiveMagic);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint64_t i = 1; i <= 2000; ++i) {
    Payload* old = published.exchange(new Payload{kLiveMagic, i});
    domain.Retire([old] {
      old->magic = kDeadMagic;
      delete old;
    });
    // On a single-core box the tight swap loop can otherwise retire
    // all 2000 payloads before a reader is ever scheduled.
    if (i % 64 == 0) std::this_thread::yield();
  }
  // Bounded wait for at least one read so the assertion below is
  // meaningful (bounded: a reader that died on its ASSERT must not
  // hang the test — reads then stays 0 and EXPECT_GT reports it).
  for (int spin = 0; spin < 100000 && reads.load() == 0; ++spin) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& r : readers) r.join();
  domain.TryReclaim();
  EXPECT_GT(reads.load(), 0);
  delete published.load();
}

}  // namespace
}  // namespace lispoison
