// Seeded chaos storms against the serving engine: every failure-capable
// subsystem is armed at once (rebuild faults, pool stalls, reclamation
// skips) while writer threads churn and a reader hammers the lock-free
// path, and the harness asserts the invariants the overload-resilience
// design promises:
//
//   1. Membership: every key a writer observed committed is found,
//      every key it removed — or that was shed — is absent. A shed
//      (kResourceExhausted) commits NOTHING.
//   2. Admission control: no shard's overlay ever exceeds
//      overlay_hard_cap, storm or not.
//   3. Availability: reads never block (the WriterMutex tripwire aborts
//      the process if the read path ever takes a lock) and keep
//      completing throughout the storm.
//   4. Accounting: the backend's shed_inserts() telescopes exactly
//      against the sheds its callers observed.
//   5. Recovery: once the storm is disarmed, degraded shards drain back
//      to zero and every compaction threshold is restored to the
//      configured value — the storm leaves no permanent scar.
//
// Same seed => same injected fault sequence (each point's decision
// stream is forked from the plan seed and the point name), so a failing
// seed from CI replays locally. CHAOS_TEST_SEEDS scales the sweep: the
// default is a quick smoke; CI runs 200 (500 under sanitizers).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"
#include "workload/query_driver.h"
#include "workload/search_backend.h"
#include "workload/workload.h"

namespace lispoison {
namespace {

int ChaosSeeds() {
  const char* env = std::getenv("CHAOS_TEST_SEEDS");
  if (env == nullptr) return 20;
  const int n = std::atoi(env);
  return n > 0 ? n : 20;
}

KeySet TestKeys(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  auto ks = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  EXPECT_TRUE(ks.ok());
  return *ks;
}

/// One writer's ground truth, built purely from observed op outcomes.
struct WriterOracle {
  std::map<Key, bool> present;  // Every key ever touched -> live now?
  std::int64_t sheds = 0;
  std::int64_t commits = 0;
};

/// Churns a disjoint key stripe: inserts fresh keys, removes and
/// re-inserts its own committed ones. Every outcome updates the oracle;
/// a shed leaves membership untouched by definition.
void WriterLoop(SearchBackend* backend, std::uint64_t seed, Key stripe_start,
                int ops, std::int64_t overlay_cap, WriterOracle* oracle) {
  Rng rng(seed);
  Key next_fresh = stripe_start;
  std::vector<Key> live;  // Committed and not since removed.
  for (int op = 0; op < ops; ++op) {
    const bool do_insert = live.empty() || rng.NextDouble() < 0.6;
    if (do_insert) {
      const Key k = next_fresh++;
      const Status st = backend->Insert(k);
      if (st.ok()) {
        oracle->present[k] = true;
        oracle->commits += 1;
        live.push_back(k);
      } else {
        // The only legal refusal on a brand-new key is a degraded-mode
        // shed; the key must NOT have been stored.
        ASSERT_EQ(st.code(), StatusCode::kResourceExhausted)
            << st.message();
        oracle->present[k] = false;
        oracle->sheds += 1;
      }
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      const Key k = live[idx];
      ASSERT_TRUE(backend->Remove(k).ok()) << "remove of committed key " << k;
      oracle->present[k] = false;
      live[idx] = live.back();
      live.pop_back();
    }
    if (op % 32 == 0) {
      // Invariant 2, probed mid-storm from the lock-free read path.
      for (int s = 0; s < backend->num_shards(); ++s) {
        ASSERT_LE(backend->shard_overlay_size(s), overlay_cap);
      }
    }
  }
}

TEST(ChaosServingTest, SeededStormsPreserveInvariants) {
  const int seeds = ChaosSeeds();
  for (int storm = 0; storm < seeds; ++storm) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(storm);
    SCOPED_TRACE("storm seed " + std::to_string(seed));

    const std::int64_t n = 4000;
    const KeySet base = TestKeys(n, seed);
    BackendOptions opts;
    opts.rmi.target_model_size = 200;
    opts.num_shards = 2;
    opts.compact_threshold = 48;
    opts.overlay_hard_cap = 96;
    opts.compaction_max_retries = 2;
    opts.compaction_backoff_base_us = 50;
    opts.compaction_backoff_max_us = 400;
    opts.watchdog_stall_ms = 0;  // The watchdog has its own test below.
    auto made = CreateBackend(BackendKind::kRmi, base, opts);
    ASSERT_TRUE(made.ok()) << made.status().message();
    auto backend = std::move(*made);

    // Arm everything at once: failing rebuilds, a stalling maintenance
    // pool, and skipped reclamation passes.
    FaultSpec rebuild;
    rebuild.probability = 0.3;
    FaultSpec stall;
    stall.probability = 0.2;
    stall.latency_ns = 200'000;  // 0.2ms wedges, not wall-clock blowup.
    stall.fail = false;
    FaultSpec reclaim_skip;
    reclaim_skip.probability = 0.5;
    FaultPlan(seed)
        .Arm("compaction.rebuild", rebuild)
        .Arm("pool.task", stall)
        .Arm("epoch.reclaim", reclaim_skip)
        .Activate();

    // Two writers on disjoint stripes above the base key domain, one
    // reader proving availability (invariant 3: if the read path ever
    // blocked on a writer lock the tripwire aborts the binary).
    constexpr int kWriters = 2;
    constexpr int kOpsPerWriter = 800;
    WriterOracle oracles[kWriters];
    std::atomic<bool> done{false};
    std::atomic<std::int64_t> reads{0};
    std::thread reader([&] {
      std::size_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        (void)backend->Lookup(base.keys()[i % base.keys().size()]);
        reads.fetch_add(1, std::memory_order_relaxed);
        i += 17;
      }
    });
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      const Key stripe = 100 * n + 1000 + static_cast<Key>(w) * 10'000'000;
      writers.emplace_back([&, w, stripe] {
        WriterLoop(backend.get(), seed * 31 + static_cast<std::uint64_t>(w),
                   stripe, kOpsPerWriter, opts.overlay_hard_cap, &oracles[w]);
      });
    }
    for (auto& t : writers) t.join();
    done.store(true, std::memory_order_release);
    reader.join();
    backend->WaitForMaintenance();
    FaultRegistry::Global().DisarmAll();
    EXPECT_GT(reads.load(), 0);

    // Invariant 4: the backend's shed counter telescopes exactly
    // against what the writers observed — before any recovery traffic.
    std::int64_t observed_sheds = 0;
    for (const WriterOracle& o : oracles) observed_sheds += o.sheds;
    EXPECT_EQ(backend->shed_inserts(), observed_sheds);

    // Invariant 1: membership matches the per-op oracle. No lost
    // commits, no resurrected sheds or removes.
    for (const WriterOracle& o : oracles) {
      for (const auto& [k, live] : o.present) {
        EXPECT_EQ(backend->Lookup(k).found, live) << "key " << k;
      }
    }
    for (int s = 0; s < backend->num_shards(); ++s) {
      EXPECT_LE(backend->shard_overlay_size(s), opts.overlay_hard_cap);
    }

    // Invariant 5: with the storm disarmed, fresh traffic drains every
    // degraded shard and a successful compaction per shard restores the
    // configured threshold. The nudge inserts may themselves shed while
    // a shard is still degraded — shedding re-kicks compaction, which
    // is exactly the recovery mechanism under test.
    auto recovered = [&] {
      if (backend->degraded_shards() != 0) return false;
      for (int s = 0; s < backend->num_shards(); ++s) {
        if (backend->shard_threshold(s) != opts.compact_threshold) {
          return false;
        }
      }
      return true;
    };
    Key nudge = 100 * n + 1000 + kWriters * 10'000'000;
    for (int round = 0; round < 100 && !recovered(); ++round) {
      for (int i = 0; i < 2 * static_cast<int>(opts.compact_threshold); ++i) {
        (void)backend->Insert(nudge++);
      }
      backend->WaitForMaintenance();
    }
    EXPECT_EQ(backend->degraded_shards(), 0);
    for (int s = 0; s < backend->num_shards(); ++s) {
      EXPECT_EQ(backend->shard_threshold(s), opts.compact_threshold);
      EXPECT_FALSE(backend->shard_degraded(s));
    }
  }
}

TEST(ChaosServingTest, WatchdogFlagsAStalledMaintenancePool) {
  const std::int64_t n = 3000;
  const KeySet base = TestKeys(n, /*seed=*/7);
  BackendOptions opts;
  opts.rmi.target_model_size = 200;
  opts.num_shards = 1;
  opts.compact_threshold = 32;
  opts.sync_compaction = false;  // Real maintenance worker to wedge.
  opts.watchdog_stall_ms = 50;
  auto made = CreateBackend(BackendKind::kRmi, base, opts);
  ASSERT_TRUE(made.ok()) << made.status().message();
  auto backend = std::move(*made);
  EXPECT_FALSE(backend->maintenance_stalled());
  EXPECT_EQ(backend->MaintenanceStallNanos(), 0);

  // Wedge the pool between dequeue and execution, then trigger a
  // compaction: work is pending but the pass never starts, which is
  // precisely the gap the watchdog measures.
  FaultSpec wedge;
  wedge.probability = 1.0;
  wedge.latency_ns = 500'000'000;  // 0.5s
  wedge.fail = false;
  wedge.max_fires = 1;
  FaultPlan(/*seed=*/7).Arm("pool.task", wedge).Activate();
  Key k = 100 * n + 1;
  for (int i = 0; i < static_cast<int>(opts.compact_threshold); ++i) {
    ASSERT_TRUE(backend->Insert(k++).ok());
  }

  // The stall gauge must cross the 50ms watchdog line well before the
  // 0.5s wedge releases.
  bool stalled = false;
  for (int i = 0; i < 200 && !stalled; ++i) {
    stalled = backend->maintenance_stalled();
    if (!stalled) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(stalled);
  EXPECT_GT(backend->MaintenanceStallNanos(), 0);

  // The driver's deadline check surfaces the same stall to serving:
  // read-only traffic keeps completing, but every batch boundary past
  // the deadline counts a hit — the overload signal, not an abort.
  const WorkloadSpec spec = ReadOnlyUniformWorkload(/*seed=*/3);
  auto ops = GenerateOperations(spec, base, 20000);
  ASSERT_TRUE(ops.ok());
  DriverOptions driver_opts;
  driver_opts.num_threads = 2;
  driver_opts.read_group = 8;
  driver_opts.maintenance_deadline_ms = 10;
  auto result = RunWorkload(backend.get(), *ops, driver_opts);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->reads, static_cast<std::int64_t>(ops->size()));
  EXPECT_GE(result->maintenance_deadline_hits, 1);

  // Once the wedge releases and the pass publishes, the stall clears.
  backend->WaitForMaintenance();
  FaultRegistry::Global().DisarmAll();
  EXPECT_EQ(backend->MaintenanceStallNanos(), 0);
  EXPECT_FALSE(backend->maintenance_stalled());
  EXPECT_EQ(backend->compactions(), 1);
}

}  // namespace
}  // namespace lispoison
