#include "index/cdf_regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

TEST(CdfRegressionTest, PerfectLineHasZeroLoss) {
  // Keys 0, 10, 20, ..., 90 with ranks 1..10: exactly linear CDF.
  auto ks = GenerateEvenlySpaced(10, KeyDomain{0, 90});
  ASSERT_TRUE(ks.ok());
  auto fit = FitCdfRegression(*ks);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(static_cast<double>(fit->mse), 0.0, 1e-12);
  EXPECT_NEAR(fit->model.w, 0.1, 1e-12);
  EXPECT_NEAR(fit->model.b, 1.0, 1e-12);
}

TEST(CdfRegressionTest, ClosedFormMatchesHandComputation) {
  // Keys {2, 6, 7, 12}, ranks {1,2,3,4} (the paper's running example).
  auto ks = KeySet::Create({2, 6, 7, 12}, KeyDomain{1, 13});
  ASSERT_TRUE(ks.ok());
  auto fit = FitCdfRegression(*ks);
  ASSERT_TRUE(fit.ok());
  // Hand computation: MK=6.75, MR=2.5, MKR=83/4=20.75,
  // Cov = 20.75 - 6.75*2.5 = 3.875, VarK = 233/4 - 6.75^2 = 12.6875.
  const double w = 3.875 / 12.6875;
  const double b = 2.5 - w * 6.75;
  EXPECT_NEAR(fit->model.w, w, 1e-12);
  EXPECT_NEAR(fit->model.b, b, 1e-12);
  // Loss: VarR - Cov^2 / VarK with VarR = 1.25.
  EXPECT_NEAR(static_cast<double>(fit->mse), 1.25 - 3.875 * w, 1e-12);
}

TEST(CdfRegressionTest, FitMinimizesMseAgainstPerturbations) {
  Rng rng(5);
  auto ks = GenerateUniform(200, KeyDomain{0, 999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto fit = FitCdfRegression(*ks);
  ASSERT_TRUE(fit.ok());
  std::vector<Rank> ranks;
  for (Rank r = 1; r <= ks->size(); ++r) ranks.push_back(r);
  const long double opt = EvaluateMse(fit->model, ks->keys(), ranks);
  EXPECT_NEAR(static_cast<double>(opt), static_cast<double>(fit->mse), 1e-6);
  // Any perturbed model must be at least as bad.
  for (const double dw : {-1e-4, 1e-4}) {
    for (const double db : {-1.0, 1.0}) {
      LinearModel perturbed{fit->model.w + dw, fit->model.b + db};
      EXPECT_GE(static_cast<double>(
                    EvaluateMse(perturbed, ks->keys(), ranks)) +
                    1e-9,
                static_cast<double>(opt));
    }
  }
}

TEST(CdfRegressionTest, LossInvariantUnderRankTranslation) {
  // Fitting on global ranks r+c gives the same loss as local ranks r.
  auto ks = KeySet::Create({10, 25, 31, 47, 60}, KeyDomain{0, 100});
  ASSERT_TRUE(ks.ok());
  std::vector<Rank> local{1, 2, 3, 4, 5};
  std::vector<Rank> global{101, 102, 103, 104, 105};
  auto f_local = FitCdfRegression(ks->keys(), local);
  auto f_global = FitCdfRegression(ks->keys(), global);
  ASSERT_TRUE(f_local.ok());
  ASSERT_TRUE(f_global.ok());
  EXPECT_NEAR(static_cast<double>(f_local->mse),
              static_cast<double>(f_global->mse), 1e-9);
  EXPECT_NEAR(f_local->model.w, f_global->model.w, 1e-12);
  EXPECT_NEAR(f_global->model.b, f_local->model.b + 100.0, 1e-9);
}

TEST(CdfRegressionTest, LossInvariantUnderKeyTranslation) {
  std::vector<Key> keys{10, 25, 31, 47, 60};
  std::vector<Key> shifted;
  for (Key k : keys) shifted.push_back(k + 1000000000);
  std::vector<Rank> ranks{1, 2, 3, 4, 5};
  auto f1 = FitCdfRegression(keys, ranks);
  auto f2 = FitCdfRegression(shifted, ranks);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_NEAR(static_cast<double>(f1->mse), static_cast<double>(f2->mse),
              1e-6);
  EXPECT_NEAR(f1->model.w, f2->model.w, 1e-12);
}

TEST(CdfRegressionTest, SingleKeyDegenerates) {
  auto ks = KeySet::Create({5}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  auto fit = FitCdfRegression(*ks);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->model.w, 0.0);
  EXPECT_DOUBLE_EQ(fit->model.b, 1.0);
  EXPECT_DOUBLE_EQ(static_cast<double>(fit->mse), 0.0);
}

TEST(CdfRegressionTest, EmptyKeysetFails) {
  auto ks = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(FitCdfRegression(*ks).ok());
}

TEST(CdfRegressionTest, MismatchedVectorsFail) {
  EXPECT_FALSE(FitCdfRegression({1, 2}, {1}).ok());
}

TEST(CdfRegressionTest, TwoPointsFitExactly) {
  auto fit = FitCdfRegression({3, 9}, {1, 2});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(static_cast<double>(fit->mse), 0.0, 1e-15);
  EXPECT_NEAR(fit->model.Predict(3), 1.0, 1e-12);
  EXPECT_NEAR(fit->model.Predict(9), 2.0, 1e-12);
}

TEST(CdfRegressionTest, EvaluateMseOfArbitraryModel) {
  const LinearModel m{0.0, 2.0};  // Constant prediction 2.
  // Residuals vs ranks {1,2,3}: 1,0,1 -> MSE = 2/3.
  EXPECT_NEAR(static_cast<double>(EvaluateMse(m, {5, 6, 7}, {1, 2, 3})),
              2.0 / 3.0, 1e-12);
}

TEST(LinearModelTest, PredictClamped) {
  const LinearModel m{1.0, 0.0};
  EXPECT_EQ(m.PredictClamped(5, 1, 10), 5);
  EXPECT_EQ(m.PredictClamped(-3, 1, 10), 1);
  EXPECT_EQ(m.PredictClamped(99, 1, 10), 10);
}

}  // namespace
}  // namespace lispoison
