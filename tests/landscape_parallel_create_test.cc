#include "attack/loss_landscape.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "data/keyset.h"

namespace lispoison {
namespace {

// The parallel Create splits the base keys into fixed 64Ki-element
// chunks and stitches exact-integer partials, so its landscape must be
// bit-identical to the serial build at every thread count. These tests
// pin that: aggregates, gap count, the base loss bits, and both argmax
// results must not move when a pool is supplied.

void ExpectSameLandscape(const LossLandscape& serial,
                         const LossLandscape& parallel, ThreadPool* pool) {
  const LossLandscape::Aggregates a = serial.aggregates();
  const LossLandscape::Aggregates b = parallel.aggregates();
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.shift, b.shift);
  EXPECT_TRUE(a.sum_k == b.sum_k);
  EXPECT_TRUE(a.sum_k2 == b.sum_k2);
  EXPECT_TRUE(a.sum_kr == b.sum_kr);
  EXPECT_EQ(serial.gap_count(), parallel.gap_count());
  EXPECT_EQ(serial.BaseLoss(), parallel.BaseLoss());

  auto want = serial.FindOptimal(/*interior_only=*/false);
  auto got = parallel.FindOptimal(/*interior_only=*/false,
                                  /*excluded=*/nullptr, pool);
  ASSERT_EQ(want.ok(), got.ok());
  if (want.ok()) {
    EXPECT_EQ(want->key, got->key);
    EXPECT_EQ(want->loss, got->loss);
  }

  LossLandscape::ArgmaxOptions argmax;
  auto want_rm = serial.FindOptimalRemoval(/*allowed=*/nullptr,
                                           /*pool=*/nullptr, argmax);
  auto got_rm = parallel.FindOptimalRemoval(/*allowed=*/nullptr, pool, argmax);
  ASSERT_EQ(want_rm.ok(), got_rm.ok());
  if (want_rm.ok()) {
    EXPECT_EQ(want_rm->key, got_rm->key);
    EXPECT_EQ(want_rm->loss, got_rm->loss);
  }
}

TEST(ParallelCreateTest, BitIdenticalAcrossThreadCounts) {
  // n > 64Ki so the chunked path actually engages; an awkward n (prime
  // remainder chunk) exercises the tail chunk.
  Rng rng(31);
  auto ks = GenerateUniform(70'001, KeyDomain{0, 40'000'000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto serial = LossLandscape::Create(*ks);
  ASSERT_TRUE(serial.ok());
  for (int threads : {2, 3, 7}) {
    ThreadPool pool(threads);
    auto parallel = LossLandscape::Create(*ks, &pool);
    ASSERT_TRUE(parallel.ok()) << "threads " << threads;
    ExpectSameLandscape(*serial, *parallel, &pool);
  }
}

TEST(ParallelCreateTest, ExactChunkMultipleHasNoTailArtifacts) {
  // n == 2 * 65536 lands chunk boundaries exactly on the key array
  // ends; the boundary-gap emission (cursor re-derived from the left
  // neighbor) must still produce the identical gap list.
  Rng rng(32);
  auto ks = GenerateUniform(131'072, KeyDomain{0, 80'000'000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto serial = LossLandscape::Create(*ks);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(3);
  auto parallel = LossLandscape::Create(*ks, &pool);
  ASSERT_TRUE(parallel.ok());
  ExpectSameLandscape(*serial, *parallel, &pool);
}

TEST(ParallelCreateTest, SmallInputsTakeTheSerialPathUnchanged) {
  Rng rng(33);
  auto ks = GenerateUniform(500, KeyDomain{0, 9'999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto serial = LossLandscape::Create(*ks);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  auto parallel = LossLandscape::Create(*ks, &pool);
  ASSERT_TRUE(parallel.ok());
  ExpectSameLandscape(*serial, *parallel, &pool);
}

TEST(ParallelCreateTest, DenseDomainKeepsBoundaryGapsIdentical)  {
  // Nearly-full domain: most gaps are single keys and many chunk
  // boundaries fall inside runs of adjacent keys, the hard case for
  // per-chunk gap emission.
  std::vector<Key> keys;
  keys.reserve(100'000);
  for (Key k = 0; k < 150'000; k += (k % 3 == 0 ? 1 : 2)) keys.push_back(k);
  auto ks = KeySet::Create(std::move(keys), KeyDomain{-5, 200'000});
  ASSERT_TRUE(ks.ok());
  auto serial = LossLandscape::Create(*ks);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(5);
  auto parallel = LossLandscape::Create(*ks, &pool);
  ASSERT_TRUE(parallel.ok());
  ExpectSameLandscape(*serial, *parallel, &pool);
}

TEST(ParallelCreateTest, ParallelBuildFeedsIncrementalCommitsExactly) {
  // Build parallel, then drive the same insert sequence through both
  // landscapes: every post-commit loss must stay bitwise equal, proving
  // the parallel build left every internal structure (prefix array,
  // Fenwick overlays, gap tiers) in the serial state.
  Rng rng(34);
  auto ks = GenerateUniform(70'000, KeyDomain{0, 10'000'000}, &rng);
  ASSERT_TRUE(ks.ok());
  auto serial = LossLandscape::Create(*ks);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(3);
  auto parallel = LossLandscape::Create(*ks, &pool);
  ASSERT_TRUE(parallel.ok());

  for (int round = 0; round < 12; ++round) {
    auto want = serial->FindOptimal(/*interior_only=*/false);
    auto got = parallel->FindOptimal(/*interior_only=*/false,
                                     /*excluded=*/nullptr, &pool);
    ASSERT_TRUE(want.ok() && got.ok());
    ASSERT_EQ(want->key, got->key) << "round " << round;
    ASSERT_EQ(want->loss, got->loss) << "round " << round;
    ASSERT_TRUE(serial->InsertKey(want->key).ok());
    ASSERT_TRUE(parallel->InsertKey(got->key).ok());
    EXPECT_EQ(serial->BaseLoss(), parallel->BaseLoss()) << "round " << round;
  }
}

}  // namespace
}  // namespace lispoison
