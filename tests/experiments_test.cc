#include "eval/experiments.h"

#include <gtest/gtest.h>

namespace lispoison {
namespace {

TEST(LinearGridTest, TinyGridShapeAndMonotonicity) {
  LinearGridConfig config;
  config.key_counts = {100};
  config.densities = {0.2};
  config.poison_pcts = {2, 10};
  config.trials = 5;
  config.seed = 7;
  auto cells = RunLinearPoisonGrid(config);
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 2u);
  const auto& low = (*cells)[0];
  const auto& high = (*cells)[1];
  EXPECT_EQ(low.keys, 100);
  EXPECT_EQ(low.key_domain, 500);
  EXPECT_DOUBLE_EQ(low.poison_pct, 2);
  // More poisoning -> larger median ratio loss.
  EXPECT_GT(high.ratio_loss.median, low.ratio_loss.median);
  EXPECT_GE(low.ratio_loss.median, 1.0);
}

TEST(LinearGridTest, NormalDistributionRuns) {
  LinearGridConfig config;
  config.key_counts = {100};
  config.densities = {0.5};
  config.poison_pcts = {10};
  config.trials = 3;
  config.distribution = KeyDistribution::kNormal;
  auto cells = RunLinearPoisonGrid(config);
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(cells->size(), 1u);
  EXPECT_GT((*cells)[0].ratio_loss.median, 1.0);
}

TEST(LinearGridTest, Validation) {
  LinearGridConfig config;
  config.trials = 0;
  EXPECT_FALSE(RunLinearPoisonGrid(config).ok());

  config = LinearGridConfig{};
  config.key_counts = {100};
  config.densities = {1.5};
  config.poison_pcts = {10};
  config.trials = 1;
  EXPECT_FALSE(RunLinearPoisonGrid(config).ok());

  config = LinearGridConfig{};
  config.key_counts = {10};
  config.densities = {0.5};
  config.poison_pcts = {1};  // floor(10 * 0.01) = 0 keys.
  config.trials = 1;
  EXPECT_FALSE(RunLinearPoisonGrid(config).ok());
}

TEST(RmiSyntheticTest, TinyPanelRuns) {
  RmiSyntheticConfig config;
  config.keys = 1000;
  config.model_size = 100;
  config.key_domain = 100000;
  config.poison_pcts = {1, 10};
  config.alphas = {2};
  config.seed = 11;
  auto cells = RunRmiSynthetic(config);
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 2u);
  EXPECT_LT((*cells)[0].rmi_ratio, (*cells)[1].rmi_ratio);
  EXPECT_GT((*cells)[1].rmi_ratio, 1.0);
}

TEST(RmiSyntheticTest, LogNormalPanelRuns) {
  RmiSyntheticConfig config;
  config.keys = 1000;
  config.model_size = 100;
  config.key_domain = 100000;
  config.poison_pcts = {10};
  config.alphas = {3};
  config.distribution = KeyDistribution::kLogNormal;
  auto cells = RunRmiSynthetic(config);
  ASSERT_TRUE(cells.ok());
  EXPECT_GT((*cells)[0].rmi_ratio, 1.0);
}

TEST(RmiRealTest, MiamiPanelScaledRuns) {
  RmiRealConfig config;
  config.dataset = RealDataset::kMiamiSalaries;
  config.n_override = 1000;
  config.model_size = 50;
  config.poison_pcts = {5, 20};
  auto cells = RunRmiReal(config);
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 2u);
  EXPECT_GT((*cells)[1].rmi_ratio, (*cells)[0].rmi_ratio * 0.8);
  EXPECT_GT((*cells)[1].rmi_ratio, 1.0);
}

TEST(RmiRealTest, OsmPanelScaledRuns) {
  RmiRealConfig config;
  config.dataset = RealDataset::kOsmLatitudes;
  config.n_override = 2000;
  config.model_size = 100;
  config.poison_pcts = {10};
  auto cells = RunRmiReal(config);
  ASSERT_TRUE(cells.ok());
  EXPECT_GT((*cells)[0].rmi_ratio, 1.0);
}

}  // namespace
}  // namespace lispoison
