#include "index/binary_search_index.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

TEST(BinarySearchIndexTest, FindsAllKeys) {
  Rng rng(1);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  BinarySearchIndex idx(*ks);
  for (std::int64_t i = 0; i < ks->size(); ++i) {
    const auto r = idx.Lookup(ks->at(i));
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.position, i);
  }
}

TEST(BinarySearchIndexTest, MissingKeyNotFound) {
  auto ks = KeySet::Create({1, 3, 5}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  BinarySearchIndex idx(*ks);
  EXPECT_FALSE(idx.Lookup(2).found);
  EXPECT_FALSE(idx.Lookup(0).found);
  EXPECT_FALSE(idx.Lookup(10).found);
}

TEST(BinarySearchIndexTest, ComparisonsLogarithmic) {
  Rng rng(2);
  auto ks = GenerateUniform(4096, KeyDomain{0, 999999}, &rng);
  ASSERT_TRUE(ks.ok());
  BinarySearchIndex idx(*ks);
  const std::int64_t bound =
      static_cast<std::int64_t>(std::ceil(std::log2(4096.0))) + 1;
  for (std::int64_t i = 0; i < ks->size(); i += 111) {
    EXPECT_LE(idx.Lookup(ks->at(i)).comparisons, bound);
  }
}

TEST(BinarySearchIndexTest, EmptyIndex) {
  auto ks = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  BinarySearchIndex idx(*ks);
  EXPECT_EQ(idx.size(), 0);
  EXPECT_FALSE(idx.Lookup(5).found);
}

}  // namespace
}  // namespace lispoison
