// Sharded serving engine coverage: the sharded backend must be
// outcome-identical to the single backend on seeded workloads (found
// counts, scan counts, committed inserts — everything derived from
// membership), shard boundaries must balance key *counts* under skew
// (empirical-CDF splits), LookupBatch must match scalar Lookup bit for
// bit, and work accounting must stay deterministic across driver
// thread counts at a fixed shard count. Per-op *work* is intentionally
// not compared across shard counts: a shard's substrate indexes n/S
// keys, so probe/comparison counts shrink with S by construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"
#include "workload/query_driver.h"
#include "workload/search_backend.h"
#include "workload/workload.h"

namespace lispoison {
namespace {

KeySet TestKeys(std::int64_t n, std::uint64_t seed = 11) {
  Rng rng(seed);
  auto ks = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  EXPECT_TRUE(ks.ok());
  return *ks;
}

std::unique_ptr<SearchBackend> MakeSharded(BackendKind kind,
                                           const KeySet& ks, int num_shards,
                                           std::int64_t compact_threshold = 0,
                                           bool sync_compaction = false) {
  BackendOptions opts;
  opts.rmi.target_model_size = 500;
  opts.num_shards = num_shards;
  opts.compact_threshold = compact_threshold;
  opts.sync_compaction = sync_compaction;
  auto backend = CreateBackend(kind, ks, opts);
  EXPECT_TRUE(backend.ok()) << backend.status().message();
  return std::move(*backend);
}

TEST(ShardedBackendTest, ShardCountIsClampedToKeyCount) {
  const KeySet small = TestKeys(3);
  auto backend = MakeSharded(BackendKind::kBinarySearch, small, 64);
  EXPECT_EQ(backend->num_shards(), 3);
  auto one = MakeSharded(BackendKind::kBinarySearch, small, 0);
  EXPECT_EQ(one->num_shards(), 1);
  const KeySet big = TestKeys(2000);
  auto seven = MakeSharded(BackendKind::kRmi, big, 7);
  EXPECT_EQ(seven->num_shards(), 7);
}

TEST(ShardedBackendTest, CdfSplitsBalanceKeyCountsUnderSkew) {
  // A quadratic keyset: key density is heavily skewed toward the low
  // end of the domain. Equal key-*range* splits would overload shard 0;
  // the empirical-CDF splits keep every shard within one key of n/S.
  const std::int64_t n = 7000;
  std::vector<Key> keys;
  keys.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) keys.push_back(i * i);
  auto ks = KeySet::Create(keys, KeyDomain{0, n * n});
  ASSERT_TRUE(ks.ok());
  for (const int shards : {2, 4, 7}) {
    auto backend = MakeSharded(BackendKind::kBinarySearch, *ks, shards);
    ASSERT_EQ(backend->num_shards(), shards);
    std::int64_t total = 0;
    for (int s = 0; s < shards; ++s) {
      const std::int64_t size = backend->shard_base_size(s);
      EXPECT_GE(size, n / shards) << "shard " << s << "/" << shards;
      EXPECT_LE(size, n / shards + 1) << "shard " << s << "/" << shards;
      total += size;
    }
    EXPECT_EQ(total, n);
  }
}

TEST(ShardedBackendTest, ShardedMatchesSingleOnSeededWorkloads) {
  // The acceptance differential: identical op streams against
  // num_shards in {1, 4, 7} produce identical membership outcomes.
  // Compaction runs sync so the single-threaded replay is bit-stable.
  const KeySet ks = TestKeys(5000, /*seed=*/43);
  for (const WorkloadSpec& spec :
       {ReadOnlyUniformWorkload(13), RangeScanWorkload(13),
        ReadInsertMixWorkload(13)}) {
    auto ops = GenerateOperations(spec, ks, 6000);
    ASSERT_TRUE(ops.ok());
    DriverOptions dopts;
    dopts.num_threads = 1;
    dopts.measure_latency = false;

    DriverResult base;
    std::int64_t base_total_keys = -1;
    bool first = true;
    for (const int shards : {1, 4, 7}) {
      auto backend = MakeSharded(BackendKind::kRmi, ks, shards,
                                 /*compact_threshold=*/128,
                                 /*sync_compaction=*/true);
      auto r = RunWorkload(backend.get(), *ops, dopts);
      ASSERT_TRUE(r.ok()) << r.status().message();
      const std::int64_t total_keys =
          backend->base_size() + backend->overlay_size();
      if (first) {
        base = *r;
        base_total_keys = total_keys;
        first = false;
        continue;
      }
      EXPECT_EQ(r->read_found, base.read_found)
          << spec.name << " shards=" << shards;
      EXPECT_EQ(r->scanned_keys, base.scanned_keys)
          << spec.name << " shards=" << shards;
      EXPECT_EQ(r->inserts, base.inserts)
          << spec.name << " shards=" << shards;
      EXPECT_EQ(r->insert_failures, base.insert_failures)
          << spec.name << " shards=" << shards;
      EXPECT_EQ(total_keys, base_total_keys)
          << spec.name << " shards=" << shards;
    }
  }
}

TEST(ShardedBackendTest, PointOpsAgreeWithMembershipAcrossShardCounts) {
  const KeySet ks = TestKeys(4000, /*seed=*/97);
  auto one = MakeSharded(BackendKind::kRmi, ks, 1);
  auto four = MakeSharded(BackendKind::kRmi, ks, 4);
  auto seven = MakeSharded(BackendKind::kRmi, ks, 7);
  Rng rng(31);
  for (int i = 0; i < 3000; ++i) {
    const Key k = i % 2 == 0 ? ks.at(rng.UniformInt(0, ks.size() - 1))
                             : rng.UniformInt(0, 100 * 4000);
    const bool expect_found = ks.Contains(k);
    EXPECT_EQ(one->Lookup(k).found, expect_found);
    EXPECT_EQ(four->Lookup(k).found, expect_found);
    EXPECT_EQ(seven->Lookup(k).found, expect_found);
  }
  // Cross-shard scans: the per-shard range counts must stitch back
  // together exactly, including ranges spanning every split boundary.
  for (int i = 0; i < 400; ++i) {
    const std::int64_t a = rng.UniformInt(0, ks.size() - 1);
    const std::int64_t b =
        std::min(ks.size() - 1, a + rng.UniformInt(0, 2000));
    const std::int64_t expected = b - a + 1;
    EXPECT_EQ(one->Scan(ks.at(a), ks.at(b)).range_count, expected);
    EXPECT_EQ(four->Scan(ks.at(a), ks.at(b)).range_count, expected);
    EXPECT_EQ(seven->Scan(ks.at(a), ks.at(b)).range_count, expected);
  }
  const auto full = seven->Scan(ks.at(0), ks.at(ks.size() - 1));
  EXPECT_EQ(full.range_count, ks.size());
}

TEST(ShardedBackendTest, LookupBatchIsBitIdenticalToScalarLookups) {
  const KeySet ks = TestKeys(3000, /*seed=*/7);
  for (const int shards : {1, 5}) {
    auto backend = MakeSharded(BackendKind::kRmi, ks, shards);
    // Populate overlays so the batch path exercises overlay probes too.
    std::int64_t inserted = 0;
    for (std::int64_t i = 0; i + 1 < ks.size() && inserted < 200; i += 13) {
      if (ks.at(i + 1) - ks.at(i) > 1 &&
          backend->Insert(ks.at(i) + 1).ok()) {
        ++inserted;
      }
    }
    ASSERT_GT(inserted, 0);

    Rng rng(71);
    std::vector<Key> keys;
    for (int i = 0; i < 500; ++i) {
      keys.push_back(i % 3 == 0 ? rng.UniformInt(0, 100 * 3000)
                                : ks.at(rng.UniformInt(0, ks.size() - 1)));
    }
    // Odd count: exercises the final partial chunk of the batch loop.
    std::vector<BackendOpResult> batch(keys.size());
    backend->LookupBatch(keys.data(), static_cast<int>(keys.size()),
                         batch.data());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const BackendOpResult scalar = backend->Lookup(keys[i]);
      EXPECT_EQ(batch[i].found, scalar.found) << "key index " << i;
      EXPECT_EQ(batch[i].work, scalar.work) << "key index " << i;
    }
  }
}

TEST(ShardedBackendTest, WorkAccountingDeterministicAcrossThreadCounts) {
  // At a *fixed* shard count, read-only work totals are a pure function
  // of the stream — independent of how many driver threads replay it.
  const KeySet ks = TestKeys(4000, /*seed=*/3);
  auto ops = GenerateOperations(ReadOnlyUniformWorkload(59), ks, 8000);
  ASSERT_TRUE(ops.ok());
  for (const int shards : {4, 7}) {
    std::int64_t base_work = -1;
    for (const int threads : {1, 2, 8}) {
      auto backend = MakeSharded(BackendKind::kRmi, ks, shards);
      DriverOptions dopts;
      dopts.num_threads = threads;
      dopts.measure_latency = false;
      dopts.read_group = 16;  // The batched path must be deterministic too.
      auto r = RunWorkload(backend.get(), *ops, dopts);
      ASSERT_TRUE(r.ok());
      if (base_work < 0) {
        base_work = r->total_work;
      } else {
        EXPECT_EQ(r->total_work, base_work)
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace lispoison
