#include "data/surrogates.h"

#include <gtest/gtest.h>

namespace lispoison {
namespace {

TEST(MiamiSurrogateTest, SpecMatchesPaperCaption) {
  const SurrogateSpec spec = MiamiSalariesSpec();
  EXPECT_EQ(spec.n, 5300);
  EXPECT_EQ(spec.domain.lo, 22733);
  EXPECT_EQ(spec.domain.hi, 190034);
  // The paper's caption reports 3.71%; its own n/m works out to 3.17%
  // (5300 / 167301). We carry the caption value in the spec and accept
  // the computed density within that discrepancy.
  EXPECT_NEAR(spec.density, 0.0371, 1e-9);
  EXPECT_NEAR(static_cast<double>(spec.n) /
                  static_cast<double>(spec.domain.size()),
              0.0317, 0.0005);
}

TEST(MiamiSurrogateTest, FullScaleMatchesSpec) {
  Rng rng(1);
  auto ks = MakeMiamiSalariesSurrogate(&rng);
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->size(), 5300);
  EXPECT_GE(ks->keys().front(), 22733);
  EXPECT_LE(ks->keys().back(), 190034);
}

TEST(MiamiSurrogateTest, RightSkewedSalaryShape) {
  Rng rng(2);
  auto ks = MakeMiamiSalariesSurrogate(&rng);
  ASSERT_TRUE(ks.ok());
  // Median salary in the bulk (between $45k and $85k), far below the
  // domain midpoint (~$106k): the distribution is right-skewed.
  const Key median = ks->at(ks->size() / 2);
  EXPECT_GT(median, 45000);
  EXPECT_LT(median, 85000);
}

TEST(MiamiSurrogateTest, OverrideScalesDown) {
  Rng rng(3);
  auto ks = MakeMiamiSalariesSurrogate(&rng, 500);
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->size(), 500);
}

TEST(OsmSurrogateTest, SpecMatchesPaperCaption) {
  const SurrogateSpec spec = OsmLatitudesSpec();
  EXPECT_EQ(spec.n, 302973);
  EXPECT_EQ(spec.domain.lo, 0);
  EXPECT_EQ(spec.domain.hi, 1200000);
}

TEST(OsmSurrogateTest, ScaledRunMatchesDomain) {
  Rng rng(4);
  auto ks = MakeOsmLatitudesSurrogate(&rng, 20000);
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->size(), 20000);
  EXPECT_GE(ks->keys().front(), 0);
  EXPECT_LE(ks->keys().back(), 1200000);
}

TEST(OsmSurrogateTest, MultiModalShape) {
  Rng rng(5);
  auto ks = MakeOsmLatitudesSurrogate(&rng, 30000);
  ASSERT_TRUE(ks.ok());
  // The northern band (Europe, lat ~47 => key ~1.155M) must be much
  // denser than the sparse southern mid-band (lat ~-20 => key ~150k).
  std::int64_t north = 0, south_sparse = 0;
  for (Key k : ks->keys()) {
    if (k > 1100000) ++north;
    if (k > 100000 && k < 200000) ++south_sparse;
  }
  EXPECT_GT(north, south_sparse);
}

TEST(OsmSurrogateTest, Deterministic) {
  Rng a(6), b(6);
  auto ka = MakeOsmLatitudesSurrogate(&a, 5000);
  auto kb = MakeOsmLatitudesSurrogate(&b, 5000);
  ASSERT_TRUE(ka.ok());
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(ka->keys(), kb->keys());
}

}  // namespace
}  // namespace lispoison
