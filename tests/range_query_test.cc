#include <gtest/gtest.h>

#include <algorithm>

#include "attack/rmi_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"
#include "index/learned_index.h"

namespace lispoison {
namespace {

RmiOptions OracleOptions(std::int64_t model_size) {
  RmiOptions opts;
  opts.target_model_size = model_size;
  opts.root_kind = RootModelKind::kOracle;
  return opts;
}

/// Reference range count via std::lower_bound / std::upper_bound.
std::pair<std::int64_t, std::int64_t> ReferenceRange(
    const std::vector<Key>& keys, Key lo, Key hi) {
  const auto first = std::lower_bound(keys.begin(), keys.end(), lo);
  const auto past = std::upper_bound(keys.begin(), keys.end(), hi);
  return {first - keys.begin(), std::max<std::int64_t>(0, past - first)};
}

TEST(RangeQueryTest, MatchesReferenceOnRandomRanges) {
  Rng rng(1);
  auto ks = GenerateUniform(5000, KeyDomain{0, 499999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, OracleOptions(100));
  ASSERT_TRUE(idx.ok());
  for (int t = 0; t < 500; ++t) {
    Key a = rng.UniformInt(0, 499999);
    Key b = rng.UniformInt(0, 499999);
    if (a > b) std::swap(a, b);
    auto res = idx->LookupRange(a, b);
    ASSERT_TRUE(res.ok());
    const auto [ref_first, ref_count] = ReferenceRange(ks->keys(), a, b);
    EXPECT_EQ(res->count, ref_count) << "[" << a << "," << b << "]";
    if (ref_count > 0) EXPECT_EQ(res->first, ref_first);
  }
}

TEST(RangeQueryTest, ExactBoundariesInclusive) {
  auto ks = KeySet::Create({10, 20, 30, 40, 50}, KeyDomain{0, 100});
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, OracleOptions(5));
  ASSERT_TRUE(idx.ok());
  auto res = idx->LookupRange(20, 40);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->first, 1);
  EXPECT_EQ(res->count, 3);
}

TEST(RangeQueryTest, EmptyAndDegenerateRanges) {
  auto ks = KeySet::Create({10, 20, 30}, KeyDomain{0, 100});
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, OracleOptions(3));
  ASSERT_TRUE(idx.ok());
  // Between stored keys.
  auto gap = idx->LookupRange(11, 19);
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(gap->count, 0);
  // Entirely below / above.
  EXPECT_EQ(idx->LookupRange(0, 5)->count, 0);
  EXPECT_EQ(idx->LookupRange(60, 100)->count, 0);
  // Point range on a stored key.
  auto point = idx->LookupRange(20, 20);
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->count, 1);
  EXPECT_EQ(point->first, 1);
  // Invalid range.
  EXPECT_FALSE(idx->LookupRange(30, 10).ok());
}

TEST(RangeQueryTest, FullRangeCoversEverything) {
  Rng rng(2);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = LearnedIndex::Build(*ks, OracleOptions(50));
  ASSERT_TRUE(idx.ok());
  auto res = idx->LookupRange(0, 99999);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->count, 1000);
  EXPECT_EQ(res->first, 0);
}

TEST(RangeQueryTest, PoisoningInflatesRangeProbes) {
  Rng rng(3);
  auto ks = GenerateUniform(4000, KeyDomain{0, 399999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto clean_idx = LearnedIndex::Build(*ks, OracleOptions(200));
  ASSERT_TRUE(clean_idx.ok());

  RmiAttackOptions attack_opts;
  attack_opts.poison_fraction = 0.15;
  attack_opts.model_size = 200;
  auto attack = PoisonRmi(*ks, attack_opts);
  ASSERT_TRUE(attack.ok());
  auto poisoned = ks->Union(attack->AllPoisonKeys());
  ASSERT_TRUE(poisoned.ok());
  auto pois_idx = LearnedIndex::Build(*poisoned, OracleOptions(230));
  ASSERT_TRUE(pois_idx.ok());

  Rng probe_rng(4);
  std::int64_t clean_probes = 0, pois_probes = 0;
  for (int t = 0; t < 300; ++t) {
    Key a = probe_rng.UniformInt(0, 399999);
    Key b = std::min<Key>(399999, a + 5000);
    clean_probes += clean_idx->LookupRange(a, b)->probes;
    pois_probes += pois_idx->LookupRange(a, b)->probes;
  }
  EXPECT_GT(pois_probes, clean_probes);
}

TEST(RmiPolynomialSecondStageTest, TrainsAndPredicts) {
  Rng rng(5);
  auto ks = GenerateLogNormal(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  RmiOptions linear = OracleOptions(100);
  RmiOptions cubic = OracleOptions(100);
  cubic.second_stage_degree = 3;
  auto rmi_linear = Rmi::Train(*ks, linear);
  auto rmi_cubic = Rmi::Train(*ks, cubic);
  ASSERT_TRUE(rmi_linear.ok());
  ASSERT_TRUE(rmi_cubic.ok());
  // Higher-capacity experts fit at least as well...
  EXPECT_LE(static_cast<double>(rmi_cubic->RmiLoss()),
            static_cast<double>(rmi_linear->RmiLoss()) * (1.0 + 1e-9));
  // ...and cost more parameters (the §VI storage trade-off).
  EXPECT_GT(rmi_cubic->ParameterCount(), rmi_linear->ParameterCount());
}

TEST(RmiPolynomialSecondStageTest, LookupsStillCorrect) {
  Rng rng(6);
  auto ks = GenerateUniform(1500, KeyDomain{0, 149999}, &rng);
  ASSERT_TRUE(ks.ok());
  RmiOptions opts = OracleOptions(100);
  opts.second_stage_degree = 2;
  auto idx = LearnedIndex::Build(*ks, opts);
  ASSERT_TRUE(idx.ok());
  for (std::int64_t i = 0; i < ks->size(); i += 13) {
    const LookupResult r = idx->Lookup(ks->at(i));
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.position, i);
  }
}

TEST(RmiPolynomialSecondStageTest, DegreeValidation) {
  auto ks = KeySet::Create({1, 2, 3, 4}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  RmiOptions opts = OracleOptions(2);
  opts.second_stage_degree = 0;
  EXPECT_FALSE(Rmi::Train(*ks, opts).ok());
  opts.second_stage_degree = 5;
  EXPECT_FALSE(Rmi::Train(*ks, opts).ok());
}

}  // namespace
}  // namespace lispoison
