// Determinism and differential coverage for the parallel RMI attack.
//
// Thread-count independence: parallelism only touches read-only
// simulation/argmax work writing disjoint slots, with every reduction in
// fixed serial order, so PoisonRmi must produce identical results for
// any num_threads.
//
// Differential: with the exchange phase disabled, the initial volume
// allocation is a pure sequence of greedy landscape insertions, and the
// incremental path must select byte-identical poison keys to the
// copy+sort+retrain reference.

#include <gtest/gtest.h>

#include <vector>

#include "attack/rmi_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

RmiAttackOptions Options(double fraction, std::int64_t model_size,
                         int num_threads) {
  RmiAttackOptions opts;
  opts.poison_fraction = fraction;
  opts.model_size = model_size;
  opts.num_threads = num_threads;
  return opts;
}

void ExpectIdenticalResults(const RmiAttackResult& a,
                            const RmiAttackResult& b) {
  EXPECT_EQ(a.AllPoisonKeys(), b.AllPoisonKeys());
  ASSERT_EQ(a.per_model_poison.size(), b.per_model_poison.size());
  for (std::size_t i = 0; i < a.per_model_poison.size(); ++i) {
    EXPECT_EQ(a.per_model_poison[i], b.per_model_poison[i]) << "model " << i;
  }
  EXPECT_EQ(a.exchanges_applied, b.exchanges_applied);
  EXPECT_EQ(a.total_poison_keys, b.total_poison_keys);
  EXPECT_EQ(a.clean_rmi_loss, b.clean_rmi_loss);
  EXPECT_EQ(a.poisoned_rmi_loss, b.poisoned_rmi_loss);
  EXPECT_EQ(a.retrained_rmi_loss, b.retrained_rmi_loss);
}

TEST(RmiDeterminismTest, ThreadCountDoesNotChangeThePoisonSet) {
  Rng rng(31);
  auto ks = GenerateUniform(4000, KeyDomain{0, 399999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto serial = PoisonRmi(*ks, Options(0.10, 200, 1));
  auto parallel = PoisonRmi(*ks, Options(0.10, 200, 8));
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();
  ExpectIdenticalResults(*serial, *parallel);
}

TEST(RmiDeterminismTest, ThreadCountIndependentOnSkewedKeys) {
  // Log-normal keys fire real exchanges, covering the parallel
  // recompute-after-apply path.
  Rng rng(32);
  auto ks = GenerateLogNormal(3000, KeyDomain{0, 299999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto serial = PoisonRmi(*ks, Options(0.10, 150, 1));
  auto parallel = PoisonRmi(*ks, Options(0.10, 150, 8));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectIdenticalResults(*serial, *parallel);
}

TEST(RmiDeterminismTest, RepeatedRunsAreIdentical) {
  Rng rng(33);
  auto ks = GenerateUniform(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto first = PoisonRmi(*ks, Options(0.10, 100, 0));
  auto second = PoisonRmi(*ks, Options(0.10, 100, 0));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectIdenticalResults(*first, *second);
}

TEST(RmiDifferentialTest, AllocationMatchesReferenceWithoutExchanges) {
  // max_exchanges < 0 disables the exchange phase, leaving exactly the
  // greedy allocation both implementations must agree on byte-for-byte.
  Rng rng(34);
  auto ks = GenerateUniform(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto opts = Options(0.10, 100, 1);
  opts.max_exchanges = -1;
  auto fast = PoisonRmi(*ks, opts);
  auto reference = PoisonRmiReference(*ks, opts);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(fast->per_model_poison.size(), reference->per_model_poison.size());
  for (std::size_t i = 0; i < fast->per_model_poison.size(); ++i) {
    EXPECT_EQ(fast->per_model_poison[i], reference->per_model_poison[i])
        << "model " << i;
  }
  EXPECT_EQ(fast->total_poison_keys, reference->total_poison_keys);
}

TEST(RmiDifferentialTest, AllocationMatchesReferenceOnSkewedKeys) {
  Rng rng(35);
  auto ks = GenerateLogNormal(1500, KeyDomain{0, 149999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto opts = Options(0.08, 150, 4);
  opts.max_exchanges = -1;
  auto fast = PoisonRmi(*ks, opts);
  auto reference = PoisonRmiReference(*ks, opts);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(fast->AllPoisonKeys(), reference->AllPoisonKeys());
}

TEST(RmiDifferentialTest, FullAttackStaysEffectiveVsReference) {
  // With exchanges on, the implementations may diverge by
  // floating-point ulps in exchange decisions, but the attack quality
  // must be equivalent.
  Rng rng(36);
  auto ks = GenerateLogNormal(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto fast = PoisonRmi(*ks, Options(0.10, 100, 2));
  auto reference = PoisonRmiReference(*ks, Options(0.10, 100, 2));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(fast->total_poison_keys, reference->total_poison_keys);
  EXPECT_GT(fast->rmi_ratio_loss, 0.8 * reference->rmi_ratio_loss);
}

}  // namespace
}  // namespace lispoison
