#include "data/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace lispoison {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(IoTest, SaveLoadRoundTrip) {
  auto ks = KeySet::Create({3, 1, 4, 15, 9}, KeyDomain{0, 20});
  ASSERT_TRUE(ks.ok());
  const std::string path = TempPath("roundtrip.keys");
  ASSERT_TRUE(SaveKeys(*ks, path).ok());
  auto loaded = LoadKeys(path, KeyDomain{0, 20});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->keys(), ks->keys());
  std::remove(path.c_str());
}

TEST(IoTest, LoadDerivesTightDomain) {
  const std::string path = TempPath("tight.keys");
  {
    std::ofstream out(path);
    out << "# comment\n5\n2\n\n8\n";
  }
  auto loaded = LoadKeys(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->domain().lo, 2);
  EXPECT_EQ(loaded->domain().hi, 8);
  EXPECT_EQ(loaded->size(), 3);
  std::remove(path.c_str());
}

TEST(IoTest, LoadMissingFileFails) {
  auto loaded = LoadKeys(TempPath("does_not_exist.keys"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(IoTest, LoadRejectsGarbageLine) {
  const std::string path = TempPath("garbage.keys");
  {
    std::ofstream out(path);
    out << "12\nnot_a_number\n";
  }
  auto loaded = LoadKeys(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(IoTest, SaveToUnwritablePathFails) {
  auto ks = KeySet::Create({1}, KeyDomain{0, 5});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(SaveKeys(*ks, "/nonexistent_dir_xyz/file.keys").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace lispoison
