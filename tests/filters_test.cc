#include "defense/filters.h"

#include <gtest/gtest.h>

#include "attack/greedy_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

TEST(RangeFilterTest, RemovesOutOfRange) {
  std::vector<Key> keys{1, 5, 10, 15, 20};
  const auto removed = RangeFilter(&keys, 5, 15);
  EXPECT_EQ(removed, (std::vector<Key>{1, 20}));
  EXPECT_EQ(keys, (std::vector<Key>{5, 10, 15}));
}

TEST(RangeFilterTest, NoOpWhenAllInside) {
  std::vector<Key> keys{5, 10};
  EXPECT_TRUE(RangeFilter(&keys, 0, 100).empty());
  EXPECT_EQ(keys.size(), 2u);
}

TEST(IqrFilterTest, RemovesFarOutliers) {
  std::vector<Key> keys{10, 11, 12, 13, 14, 15, 16, 17, 18, 1000};
  const auto removed = IqrOutlierFilter(&keys, 1.5);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], 1000);
}

TEST(IqrFilterTest, SmallInputsUntouched) {
  std::vector<Key> keys{1, 100, 10000};
  EXPECT_TRUE(IqrOutlierFilter(&keys).empty());
  EXPECT_EQ(keys.size(), 3u);
}

TEST(InteriorPoisoningEvadesFilters, RangeAndIqrSeeNothing) {
  // The central claim the attack design makes: poisons placed strictly
  // inside the legitimate range are invisible to range and IQR filters.
  Rng rng(1);
  auto ks = GenerateUniform(150, KeyDomain{0, 1499}, &rng);
  ASSERT_TRUE(ks.ok());
  auto attack = GreedyPoisonCdf(*ks, 15);
  ASSERT_TRUE(attack.ok());
  auto poisoned = ApplyPoison(*ks, attack->poison_keys);
  ASSERT_TRUE(poisoned.ok());

  std::vector<Key> keys = poisoned->keys();
  const auto range_removed =
      RangeFilter(&keys, ks->keys().front(), ks->keys().back());
  EXPECT_TRUE(range_removed.empty());
  const auto iqr_removed = IqrOutlierFilter(&keys, 1.5);
  for (Key k : iqr_removed) {
    // Whatever IQR removes (if anything) must not be poison: poisons sit
    // in the dense bulk by construction.
    for (Key kp : attack->poison_keys) EXPECT_NE(k, kp);
  }
}

TEST(DensitySpikeFilterTest, FlagsDenseWindow) {
  // 50 keys crowded into one window plus 50 spread out.
  std::vector<Key> keys;
  for (Key k = 0; k < 50; ++k) keys.push_back(k);           // Window 0.
  for (Key k = 0; k < 50; ++k) keys.push_back(1000 + k * 90);  // Spread.
  const auto removed =
      DensitySpikeFilter(&keys, KeyDomain{0, 5499}, 10, 3.0);
  EXPECT_GE(removed.size(), 45u);  // The crowded window gets flagged.
  for (Key k : removed) EXPECT_LT(k, 550);
}

TEST(DensitySpikeFilterTest, DegenerateInputs) {
  std::vector<Key> empty;
  EXPECT_TRUE(DensitySpikeFilter(&empty, KeyDomain{0, 9}, 4, 2.0).empty());
  std::vector<Key> keys{1, 2};
  EXPECT_TRUE(DensitySpikeFilter(&keys, KeyDomain{0, 9}, 0, 2.0).empty());
  EXPECT_EQ(keys.size(), 2u);
}

}  // namespace
}  // namespace lispoison
