#include "index/polynomial_regression.h"

#include <gtest/gtest.h>

#include "attack/greedy_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

TEST(PolynomialRegressionTest, DegreeOneMatchesClosedFormLinear) {
  Rng rng(1);
  auto ks = GenerateUniform(200, KeyDomain{0, 1999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto poly = FitPolynomialCdf(*ks, 1);
  auto linear = FitCdfRegression(*ks);
  ASSERT_TRUE(poly.ok());
  ASSERT_TRUE(linear.ok());
  EXPECT_NEAR(static_cast<double>(poly->mse),
              static_cast<double>(linear->mse),
              1e-6 * std::max(1.0, static_cast<double>(linear->mse)));
}

TEST(PolynomialRegressionTest, HigherDegreeNeverWorse) {
  Rng rng(2);
  auto ks = GenerateLogNormal(500, KeyDomain{0, 49999}, &rng);
  ASSERT_TRUE(ks.ok());
  long double prev = 0;
  for (int degree = 1; degree <= 4; ++degree) {
    auto fit = FitPolynomialCdf(*ks, degree);
    ASSERT_TRUE(fit.ok());
    if (degree > 1) {
      EXPECT_LE(static_cast<double>(fit->mse),
                static_cast<double>(prev) * (1.0 + 1e-9))
          << "degree " << degree;
    }
    prev = fit->mse;
  }
}

TEST(PolynomialRegressionTest, CubicKeysFitPerfectlyAtDegreeThree) {
  // Keys k_i = i^3 make rank a perfect cubic function of the key ...
  // actually rank(k) = k^{1/3}; instead use keys where rank is cubic in
  // the normalized key: sample x uniformly and set k = x so CDF linear;
  // simplest exact check: three points are fit exactly by a quadratic.
  auto fit = FitPolynomialCdf({0, 10, 100}, {1, 2, 3}, 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(static_cast<double>(fit->mse), 0.0, 1e-9);
  EXPECT_NEAR(fit->model.Predict(0), 1.0, 1e-6);
  EXPECT_NEAR(fit->model.Predict(10), 2.0, 1e-6);
  EXPECT_NEAR(fit->model.Predict(100), 3.0, 1e-6);
}

TEST(PolynomialRegressionTest, DegenerateFallsBackToLowerDegree) {
  // Two distinct keys cannot support a cubic; the fit must fall back
  // and still interpolate both points.
  auto fit = FitPolynomialCdf({5, 9}, {1, 2}, 3);
  ASSERT_TRUE(fit.ok());
  EXPECT_LE(fit->model.degree, 1);
  EXPECT_NEAR(static_cast<double>(fit->mse), 0.0, 1e-9);
}

TEST(PolynomialRegressionTest, AllEqualKeysConstantPredictor) {
  auto fit = FitPolynomialCdf({7, 7, 7}, {1, 2, 3}, 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->model.Predict(7), 2.0, 1e-9);
}

TEST(PolynomialRegressionTest, Validation) {
  EXPECT_FALSE(FitPolynomialCdf({}, {}, 1).ok());
  EXPECT_FALSE(FitPolynomialCdf({1}, {1, 2}, 1).ok());
  EXPECT_FALSE(FitPolynomialCdf({1, 2}, {1, 2}, 0).ok());
  EXPECT_FALSE(FitPolynomialCdf({1, 2}, {1, 2}, 5).ok());
}

TEST(PolynomialRegressionTest, ParameterCountAccounting) {
  auto fit = FitPolynomialCdf({1, 5, 9, 14}, {1, 2, 3, 4}, 3);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->model.ParameterCount(), 3 + 1 + 2);
}

TEST(PolynomialRegressionTest, RobustnessAgainstLinearTargetedPoisoning) {
  // Section VI's complexity-defense claim: a higher-degree second stage
  // absorbs part of the damage of an attack designed against the linear
  // model — at a parameter-storage cost.
  Rng rng(3);
  auto ks = GenerateUniform(300, KeyDomain{0, 2999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto attack = GreedyPoisonCdf(*ks, 30);
  ASSERT_TRUE(attack.ok());
  auto poisoned = ApplyPoison(*ks, attack->poison_keys);
  ASSERT_TRUE(poisoned.ok());

  auto linear_clean = FitPolynomialCdf(*ks, 1);
  auto linear_pois = FitPolynomialCdf(*poisoned, 1);
  auto cubic_clean = FitPolynomialCdf(*ks, 3);
  auto cubic_pois = FitPolynomialCdf(*poisoned, 3);
  ASSERT_TRUE(linear_clean.ok());
  ASSERT_TRUE(linear_pois.ok());
  ASSERT_TRUE(cubic_clean.ok());
  ASSERT_TRUE(cubic_pois.ok());
  // Ratio is the wrong cross-model comparison (the cubic's clean
  // baseline is already much smaller); what drives lookup cost is the
  // absolute post-attack MSE, and there the richer model must win.
  EXPECT_LT(static_cast<double>(cubic_pois->mse),
            static_cast<double>(linear_pois->mse));
  EXPECT_LT(static_cast<double>(cubic_clean->mse),
            static_cast<double>(linear_clean->mse) * (1.0 + 1e-9));
}

}  // namespace
}  // namespace lispoison
