#include "attack/greedy_poisoner.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "data/generators.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

TEST(GreedyPoisonerTest, ProducesExactlyPKeys) {
  Rng rng(1);
  auto ks = GenerateUniform(90, KeyDomain{0, 499}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyPoisonCdf(*ks, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->poison_keys.size(), 10u);
  EXPECT_EQ(result->loss_trajectory.size(), 10u);
}

TEST(GreedyPoisonerTest, PoisonKeysDisjointFromLegitimate) {
  Rng rng(2);
  auto ks = GenerateUniform(100, KeyDomain{0, 999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyPoisonCdf(*ks, 15);
  ASSERT_TRUE(result.ok());
  std::set<Key> unique(result->poison_keys.begin(),
                       result->poison_keys.end());
  EXPECT_EQ(unique.size(), result->poison_keys.size());
  for (Key kp : result->poison_keys) {
    EXPECT_FALSE(ks->Contains(kp));
    EXPECT_GT(kp, ks->keys().front());
    EXPECT_LT(kp, ks->keys().back());
  }
}

TEST(GreedyPoisonerTest, PoisonedLossMatchesRetrainedModel) {
  Rng rng(3);
  auto ks = GenerateUniform(80, KeyDomain{0, 799}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyPoisonCdf(*ks, 8);
  ASSERT_TRUE(result.ok());
  auto poisoned = ApplyPoison(*ks, result->poison_keys);
  ASSERT_TRUE(poisoned.ok());
  auto fit = FitCdfRegression(*poisoned);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(static_cast<double>(result->poisoned_loss),
              static_cast<double>(fit->mse),
              1e-7 * static_cast<double>(fit->mse));
}

TEST(GreedyPoisonerTest, RatioGrowsWithBudget) {
  Rng rng(4);
  auto ks = GenerateUniform(200, KeyDomain{0, 1999}, &rng);
  ASSERT_TRUE(ks.ok());
  double prev_ratio = 1.0;
  for (std::int64_t p : {2, 6, 12, 24}) {
    auto result = GreedyPoisonCdf(*ks, p);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result->RatioLoss(), prev_ratio - 1e-9);
    prev_ratio = result->RatioLoss();
  }
  EXPECT_GT(prev_ratio, 2.0);  // 12% poisoning must at least double MSE.
}

TEST(GreedyPoisonerTest, TrajectoryIsMonotoneNondecreasing) {
  // Each greedy round maximizes the new loss; adding a key the attacker
  // chose can only have been picked because it increased the loss, and
  // experimentally the trajectory is monotone on uniform data.
  Rng rng(5);
  auto ks = GenerateUniform(100, KeyDomain{0, 999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyPoisonCdf(*ks, 12);
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->loss_trajectory.size(); ++i) {
    EXPECT_GE(static_cast<double>(result->loss_trajectory[i]),
              static_cast<double>(result->loss_trajectory[i - 1]) * 0.999);
  }
}

TEST(GreedyPoisonerTest, Fig4ScenarioAchievesPaperMagnitude) {
  // Fig. 4: 10 poisoning keys on 90 uniform keys increased the error
  // 7.4x. Averaged over seeds our greedy attack must land in the same
  // regime (>= 3x, typically 5-10x).
  Rng rng(6);
  double total_ratio = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    auto ks = GenerateUniform(90, KeyDomain{0, 449}, &rng);
    ASSERT_TRUE(ks.ok());
    auto result = GreedyPoisonCdf(*ks, 10);
    ASSERT_TRUE(result.ok());
    total_ratio += result->RatioLoss();
  }
  EXPECT_GT(total_ratio / trials, 3.0);
}

TEST(GreedyPoisonerTest, BudgetValidation) {
  auto ks = KeySet::Create({1, 5, 9}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(GreedyPoisonCdf(*ks, 0).ok());
  EXPECT_FALSE(GreedyPoisonCdf(*ks, -3).ok());
  auto empty = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(GreedyPoisonCdf(*empty, 1).ok());
}

TEST(GreedyPoisonerTest, SaturatedInteriorFailsCleanly) {
  // Interior of {4,5,6,7} is fully occupied.
  auto ks = KeySet::Create({4, 5, 6, 7}, KeyDomain{0, 20});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(GreedyPoisonCdf(*ks, 1).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(GreedyPoisonerTest, PartialSaturationReportsProgress) {
  // Interior of {4, 8} has 3 free keys; p=5 must fail after 3.
  auto ks = KeySet::Create({4, 8}, KeyDomain{0, 20});
  ASSERT_TRUE(ks.ok());
  auto result = GreedyPoisonCdf(*ks, 5);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("3 of 5"), std::string::npos);
}

TEST(GreedyPoisonerTest, PoisonsClusterInDenseRegions) {
  // Build a keyset with a dense left half and sparse right half; the
  // paper observes greedy poisons cluster where keys are dense, to
  // exacerbate the CDF's non-linearity.
  std::vector<Key> keys;
  for (Key k = 0; k < 60; ++k) keys.push_back(k * 2);       // Dense half.
  for (Key k = 0; k < 10; ++k) keys.push_back(200 + k * 40);  // Sparse half.
  auto ks = KeySet::Create(std::move(keys), KeyDomain{0, 600});
  ASSERT_TRUE(ks.ok());
  auto result = GreedyPoisonCdf(*ks, 8);
  ASSERT_TRUE(result.ok());
  std::int64_t dense_side = 0;
  for (Key kp : result->poison_keys) {
    if (kp < 150) ++dense_side;
  }
  EXPECT_GE(dense_side, 6);
}

TEST(ApplyPoisonTest, UnionProducesPoisonedKeyset) {
  auto ks = KeySet::Create({10, 30}, KeyDomain{0, 50});
  ASSERT_TRUE(ks.ok());
  auto poisoned = ApplyPoison(*ks, {20});
  ASSERT_TRUE(poisoned.ok());
  EXPECT_EQ(poisoned->size(), 3);
  EXPECT_TRUE(poisoned->Contains(20));
}

}  // namespace
}  // namespace lispoison
