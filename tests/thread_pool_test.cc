#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace lispoison {
namespace {

TEST(ThreadPoolTest, InlineModeRunsOnCallerThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int value = 0;
  pool.Submit([&value] { value = 42; });
  // Inline mode executes eagerly; no Wait needed.
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, SubmitAndWaitCompletesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::int64_t count = 10000;
  std::vector<std::int64_t> hits(static_cast<std::size_t>(count), 0);
  pool.ParallelFor(count, [&hits](std::int64_t i) {
    hits[static_cast<std::size_t>(i)] += 1;  // Disjoint slots: no race.
  });
  for (std::int64_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&calls](std::int64_t) { ++calls; });
  pool.ParallelFor(-5, [&calls](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, DisjointSlotResultsAreThreadCountIndependent) {
  // The determinism contract: tasks writing disjoint slots produce the
  // same result vector for any pool size.
  const std::int64_t count = 5000;
  auto run = [count](int threads) {
    ThreadPool pool(threads);
    std::vector<std::int64_t> out(static_cast<std::size_t>(count), 0);
    pool.ParallelFor(count, [&out](std::int64_t i) {
      out[static_cast<std::size_t>(i)] = i * i % 977;
    });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ThreadPoolTest, QueueDepthAndActiveWorkersTrackBlockedTasks) {
  ThreadPool pool(2);

  // Park both workers on a gate, then queue three more tasks: the
  // telemetry accessors must see exactly 2 running and 3 waiting.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> parked{0};
  auto blocker = [&] {
    parked.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  pool.Submit(blocker);
  pool.Submit(blocker);
  while (parked.load() < 2) std::this_thread::yield();

  for (int i = 0; i < 3; ++i) {
    pool.Submit([] {});
  }
  EXPECT_EQ(pool.queue_depth(), 3);
  EXPECT_EQ(pool.active_workers(), 2);

  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  pool.Wait();
  EXPECT_EQ(pool.queue_depth(), 0);
  EXPECT_EQ(pool.active_workers(), 0);
}

TEST(ThreadPoolTest, QueueDepthIsZeroInInlineMode) {
  ThreadPool pool(1);  // Inline: Submit runs eagerly on the caller.
  pool.Submit([] {});
  EXPECT_EQ(pool.queue_depth(), 0);
  EXPECT_EQ(pool.active_workers(), 0);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.ParallelFor(100, [&sum](std::int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}

}  // namespace
}  // namespace lispoison
