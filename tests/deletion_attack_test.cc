#include "attack/deletion_attack.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "attack/loss_landscape.h"
#include "common/rng.h"
#include "common/stats.h"
#include "data/generators.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

long double DirectLoss(std::vector<Key> keys) {
  std::sort(keys.begin(), keys.end());
  MomentAccumulator acc;
  Rank r = 1;
  for (Key k : keys) acc.Add(k, r++);
  return FitFromMoments(acc).mse;
}

TEST(DeletionAttackTest, RemovesExactlyDStoredKeys) {
  Rng rng(1);
  auto ks = GenerateUniform(100, KeyDomain{0, 999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyDeleteCdf(*ks, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->removed_keys.size(), 10u);
  std::set<Key> unique(result->removed_keys.begin(),
                       result->removed_keys.end());
  EXPECT_EQ(unique.size(), 10u);
  for (Key k : result->removed_keys) EXPECT_TRUE(ks->Contains(k));
}

TEST(DeletionAttackTest, AttackedLossMatchesRetrain) {
  Rng rng(2);
  auto ks = GenerateUniform(80, KeyDomain{0, 799}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyDeleteCdf(*ks, 8);
  ASSERT_TRUE(result.ok());
  std::vector<Key> survivors;
  std::set<Key> removed(result->removed_keys.begin(),
                        result->removed_keys.end());
  for (Key k : ks->keys()) {
    if (!removed.count(k)) survivors.push_back(k);
  }
  EXPECT_NEAR(static_cast<double>(result->attacked_loss),
              static_cast<double>(DirectLoss(survivors)),
              1e-6 * std::max(1.0, static_cast<double>(result->attacked_loss)));
}

TEST(DeletionAttackTest, FirstRemovalIsOptimalAgainstBruteForce) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    auto ks = GenerateUniform(30, KeyDomain{0, 299}, &rng);
    ASSERT_TRUE(ks.ok());
    auto fast = GreedyDeleteCdf(*ks, 1);
    ASSERT_TRUE(fast.ok());
    // Brute force: try every single deletion.
    long double best = 0;
    for (std::int64_t j = 0; j < ks->size(); ++j) {
      std::vector<Key> remaining = ks->keys();
      remaining.erase(remaining.begin() + j);
      best = std::max(best, DirectLoss(remaining));
    }
    EXPECT_NEAR(static_cast<double>(fast->attacked_loss),
                static_cast<double>(best),
                1e-9 * std::max(1.0, static_cast<double>(best)))
        << "trial " << trial;
  }
}

TEST(DeletionAttackTest, DeletionIncreasesLoss) {
  Rng rng(4);
  auto ks = GenerateUniform(200, KeyDomain{0, 1999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyDeleteCdf(*ks, 20);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->RatioLoss(), 1.0);
}

TEST(DeletionAttackTest, RestrictedDeletableSetHonored) {
  Rng rng(5);
  auto ks = GenerateUniform(50, KeyDomain{0, 499}, &rng);
  ASSERT_TRUE(ks.ok());
  std::vector<Key> deletable(ks->keys().begin(), ks->keys().begin() + 10);
  auto result = GreedyDeleteCdf(*ks, 5, deletable);
  ASSERT_TRUE(result.ok());
  std::set<Key> allowed(deletable.begin(), deletable.end());
  for (Key k : result->removed_keys) {
    EXPECT_TRUE(allowed.count(k)) << k;
  }
}

TEST(DeletionAttackTest, BudgetExceedsDeletableFails) {
  Rng rng(6);
  auto ks = GenerateUniform(50, KeyDomain{0, 499}, &rng);
  ASSERT_TRUE(ks.ok());
  std::vector<Key> deletable(ks->keys().begin(), ks->keys().begin() + 3);
  EXPECT_EQ(GreedyDeleteCdf(*ks, 5, deletable).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(DeletionAttackTest, Validation) {
  auto empty = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(GreedyDeleteCdf(*empty, 1).ok());
  auto tiny = KeySet::Create({1, 2, 3}, KeyDomain{0, 10});
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(GreedyDeleteCdf(*tiny, 0).ok());
  EXPECT_FALSE(GreedyDeleteCdf(*tiny, 2).ok());  // Leaves < 2 keys.
  EXPECT_FALSE(GreedyDeleteCdf(*tiny, 1, {99}).ok());  // Not stored.
}

TEST(ModificationAttackTest, MovesPreserveKeyCount) {
  Rng rng(7);
  auto ks = GenerateUniform(100, KeyDomain{0, 999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyModifyCdf(*ks, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->moves.size(), 10u);
  for (const auto& [from, to] : result->moves) {
    EXPECT_NE(from, to);
  }
}

TEST(ModificationAttackTest, ModificationIncreasesLoss) {
  Rng rng(8);
  auto ks = GenerateUniform(150, KeyDomain{0, 1499}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyModifyCdf(*ks, 15);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->RatioLoss(), 1.0);
}

TEST(ModificationAttackTest, ModificationBeatsNothingButCostsNoBudgetGrowth) {
  // A modification adversary never grows |K|: the defender cannot even
  // detect a size anomaly. Verify the final loss corresponds to a keyset
  // of the original size.
  Rng rng(9);
  auto ks = GenerateUniform(60, KeyDomain{0, 599}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = GreedyModifyCdf(*ks, 6);
  ASSERT_TRUE(result.ok());
  // Replay the moves and retrain.
  std::vector<Key> keys = ks->keys();
  for (const auto& [from, to] : result->moves) {
    keys.erase(std::find(keys.begin(), keys.end(), from));
    keys.insert(std::lower_bound(keys.begin(), keys.end(), to), to);
  }
  EXPECT_EQ(static_cast<std::int64_t>(keys.size()), ks->size());
  EXPECT_NEAR(static_cast<double>(DirectLoss(keys)),
              static_cast<double>(result->attacked_loss),
              1e-6 * std::max(1.0,
                              static_cast<double>(result->attacked_loss)));
}

TEST(ModificationAttackTest, Validation) {
  auto tiny = KeySet::Create({1, 2, 3}, KeyDomain{0, 10});
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(GreedyModifyCdf(*tiny, 1).ok());  // Needs >= 4 keys.
  auto empty = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(GreedyModifyCdf(*empty, 1).ok());
  auto ok = KeySet::Create({1, 4, 7, 9}, KeyDomain{0, 10});
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(GreedyModifyCdf(*ok, 0).ok());
  EXPECT_FALSE(GreedyModifyCdf(*ok, 1, {42}).ok());  // Not stored.
}

// ---------------------------------------------------------------------------
// Seeded differential pins: replay each greedy attack against an
// independent rebuild-per-round reference so the incremental-engine
// refactors (tiered gaps, argmax bound caching) can never silently
// change these outputs.
// ---------------------------------------------------------------------------

/// Exact loss of \p keys with index \p j removed: rebuilt from scratch
/// through the landscape's exact 128-bit arithmetic (bit-identical to
/// DeletionLandscape by shift invariance).
long double RebuiltLossWithout(const std::vector<Key>& keys,
                               std::size_t j, const KeyDomain& domain) {
  std::vector<Key> remaining;
  remaining.reserve(keys.size() - 1);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i != j) remaining.push_back(keys[i]);
  }
  auto ks = KeySet::Create(std::move(remaining), domain);
  EXPECT_TRUE(ks.ok());
  auto ll = LossLandscape::Create(*ks);
  EXPECT_TRUE(ll.ok());
  return ll->BaseLoss();
}

TEST(DeletionAttackTest, SeededDifferentialAgainstRebuildReference) {
  // 24 seeded cases: the greedy deletion sequence and its per-round
  // losses must bit-match a reference that retrains every candidate
  // removal from scratch each round (first-maximum-in-key-order rule).
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    Rng rng(0xDE1E7E + seed);
    const std::int64_t n = 40 + static_cast<std::int64_t>(seed % 5) * 17;
    const KeyDomain domain{0, 12 * n};
    auto ks = GenerateUniform(n, domain, &rng);
    ASSERT_TRUE(ks.ok());
    const std::int64_t d = 4 + static_cast<std::int64_t>(seed % 3);

    auto fast = GreedyDeleteCdf(*ks, d);
    ASSERT_TRUE(fast.ok()) << "seed " << seed;

    std::vector<Key> work = ks->keys();
    for (std::int64_t round = 0; round < d; ++round) {
      bool have = false;
      std::size_t best_j = 0;
      long double best_loss = 0;
      for (std::size_t j = 0; j < work.size(); ++j) {
        const long double loss = RebuiltLossWithout(work, j, domain);
        if (!have || loss > best_loss) {
          best_j = j;
          best_loss = loss;
          have = true;
        }
      }
      ASSERT_TRUE(have);
      const auto r = static_cast<std::size_t>(round);
      EXPECT_EQ(fast->removed_keys[r], work[best_j])
          << "seed " << seed << " round " << round;
      EXPECT_EQ(fast->loss_trajectory[r], best_loss)
          << "seed " << seed << " round " << round;
      work.erase(work.begin() + static_cast<std::ptrdiff_t>(best_j));
    }
  }
}

TEST(ModificationAttackTest, SeededDifferentialAgainstRebuildReference) {
  // 16 seeded cases: the modification attack couples the deletion
  // landscape with LossLandscape::FindOptimal (default options, i.e.
  // the pruned + tiered argmax); the chosen (from, to) moves must
  // bit-match a reference replay whose re-insertion step runs the
  // exhaustive serial scan on a freshly built landscape.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(0x40D1F1 + seed);
    const std::int64_t n = 36 + static_cast<std::int64_t>(seed % 4) * 23;
    const KeyDomain domain{0, 14 * n};
    auto ks = GenerateUniform(n, domain, &rng);
    ASSERT_TRUE(ks.ok());
    const std::int64_t moves = 3 + static_cast<std::int64_t>(seed % 3);

    auto fast = GreedyModifyCdf(*ks, moves);
    ASSERT_TRUE(fast.ok()) << "seed " << seed;
    ASSERT_EQ(fast->moves.size(), static_cast<std::size_t>(moves));

    std::vector<Key> work = ks->keys();
    LossLandscape::ArgmaxOptions exhaustive;
    exhaustive.prune = false;
    for (std::int64_t round = 0; round < moves; ++round) {
      // Step 1 reference: best deletion by rebuild-per-candidate.
      bool have = false;
      std::size_t best_j = 0;
      long double best_loss = 0;
      for (std::size_t j = 0; j < work.size(); ++j) {
        const long double loss = RebuiltLossWithout(work, j, domain);
        if (!have || loss > best_loss) {
          best_j = j;
          best_loss = loss;
          have = true;
        }
      }
      ASSERT_TRUE(have);
      const Key moved = work[best_j];
      work.erase(work.begin() + static_cast<std::ptrdiff_t>(best_j));
      // Step 2 reference: best re-insertion via the exhaustive scan.
      auto current = KeySet::Create(work, domain);
      ASSERT_TRUE(current.ok());
      auto ll = LossLandscape::Create(*current);
      ASSERT_TRUE(ll.ok());
      auto best = ll->FindOptimal(true, nullptr, nullptr, exhaustive);
      ASSERT_TRUE(best.ok()) << "seed " << seed << " round " << round;

      const auto r = static_cast<std::size_t>(round);
      EXPECT_EQ(fast->moves[r].first, moved)
          << "seed " << seed << " round " << round;
      EXPECT_EQ(fast->moves[r].second, best->key)
          << "seed " << seed << " round " << round;
      work.insert(std::lower_bound(work.begin(), work.end(), best->key),
                  best->key);
    }
  }
}

TEST(DeletionAttackTest, IncrementalMatchesReferenceAcrossModes) {
  // The incremental engine (persistent landscape + pruned/batched
  // removal argmax) against the retained rebuild-per-round reference:
  // bit-equal removed keys, base/attacked losses and per-round loss
  // trajectories for every prune x cache x thread-count combination,
  // restricted and unrestricted.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(0xD311D1FF + seed);
    const std::int64_t n = 160 + static_cast<std::int64_t>(seed % 4) * 110;
    const KeyDomain domain{0, 11 * n};
    auto ks = seed % 2 == 0 ? GenerateUniform(n, domain, &rng)
                            : GenerateLogNormal(n, domain, &rng);
    ASSERT_TRUE(ks.ok());
    const std::int64_t d = 10 + static_cast<std::int64_t>(seed % 5);
    std::vector<Key> deletable;
    if (seed % 3 == 0) {
      for (std::int64_t i = 0; i < ks->size(); i += 2) {
        deletable.push_back(ks->at(i));
      }
    }

    auto ref = GreedyDeleteCdfReference(*ks, d, deletable);
    ASSERT_TRUE(ref.ok()) << ref.status().message();
    for (const bool prune : {false, true}) {
      for (const bool cache : {false, true}) {
        for (const int threads : {1, 3}) {
          AttackOptions options;
          options.prune_argmax = prune;
          options.cache_argmax = cache;
          options.num_threads = threads;
          auto got = GreedyDeleteCdf(*ks, d, deletable, options);
          ASSERT_TRUE(got.ok()) << got.status().message();
          const auto mode = [&] {
            return " seed " + std::to_string(seed) + " prune " +
                   std::to_string(prune) + " cache " +
                   std::to_string(cache) + " threads " +
                   std::to_string(threads);
          };
          EXPECT_EQ(got->removed_keys, ref->removed_keys) << mode();
          EXPECT_EQ(got->base_loss, ref->base_loss) << mode();
          EXPECT_EQ(got->attacked_loss, ref->attacked_loss) << mode();
          ASSERT_EQ(got->loss_trajectory.size(),
                    ref->loss_trajectory.size());
          for (std::size_t i = 0; i < ref->loss_trajectory.size(); ++i) {
            EXPECT_EQ(got->loss_trajectory[i], ref->loss_trajectory[i])
                << mode() << " round " << i;
          }
        }
      }
    }
  }
}

TEST(ModificationAttackTest, IncrementalMatchesReferenceAcrossModes) {
  // Modification couples the removal argmax with the insertion argmax
  // on one persistent landscape (RemoveKey + InsertKey per move); the
  // chosen (from, to) pairs and loss trajectory must bit-match the
  // rebuild-per-round reference in every mode.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(0x40D5EED + seed);
    const std::int64_t n = 120 + static_cast<std::int64_t>(seed % 4) * 90;
    const KeyDomain domain{0, 13 * n};
    auto ks = seed % 2 == 0 ? GenerateUniform(n, domain, &rng)
                            : GenerateLogNormal(n, domain, &rng);
    ASSERT_TRUE(ks.ok());
    const std::int64_t moves = 6 + static_cast<std::int64_t>(seed % 4);
    std::vector<Key> movable;
    if (seed % 3 == 0) {
      for (std::int64_t i = 1; i < ks->size(); i += 2) {
        movable.push_back(ks->at(i));
      }
    }

    auto ref = GreedyModifyCdfReference(*ks, moves, movable);
    ASSERT_TRUE(ref.ok()) << ref.status().message();
    for (const bool prune : {false, true}) {
      for (const bool cache : {false, true}) {
        for (const int threads : {1, 3}) {
          AttackOptions options;
          options.prune_argmax = prune;
          options.cache_argmax = cache;
          options.num_threads = threads;
          auto got = GreedyModifyCdf(*ks, moves, movable, options);
          ASSERT_TRUE(got.ok()) << got.status().message();
          const auto mode = [&] {
            return " seed " + std::to_string(seed) + " prune " +
                   std::to_string(prune) + " cache " +
                   std::to_string(cache) + " threads " +
                   std::to_string(threads);
          };
          EXPECT_EQ(got->moves, ref->moves) << mode();
          EXPECT_EQ(got->base_loss, ref->base_loss) << mode();
          EXPECT_EQ(got->attacked_loss, ref->attacked_loss) << mode();
          ASSERT_EQ(got->loss_trajectory.size(),
                    ref->loss_trajectory.size());
          for (std::size_t i = 0; i < ref->loss_trajectory.size(); ++i) {
            EXPECT_EQ(got->loss_trajectory[i], ref->loss_trajectory[i])
                << mode() << " round " << i;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace lispoison
