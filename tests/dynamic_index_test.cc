#include "index/dynamic_index.h"

#include <gtest/gtest.h>

#include "attack/greedy_poisoner.h"
#include "attack/rmi_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

DynamicIndexOptions SmallOptions(double threshold = 0.05) {
  DynamicIndexOptions opts;
  opts.rmi.target_model_size = 50;
  opts.rmi.root_kind = RootModelKind::kOracle;
  opts.retrain_threshold = threshold;
  return opts;
}

TEST(DynamicIndexTest, BuildAndLookup) {
  Rng rng(1);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = DynamicLearnedIndex::Build(*ks, SmallOptions());
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->size(), 1000);
  for (std::int64_t i = 0; i < ks->size(); i += 37) {
    EXPECT_TRUE(idx->Lookup(ks->at(i)).found);
  }
  EXPECT_FALSE(idx->Lookup(ks->at(0) == 0 ? 100000 : 0).found ||
               false);  // Out-of-set key may or may not be stored at 0.
}

TEST(DynamicIndexTest, InsertedKeysAreFoundBeforeRetrain) {
  Rng rng(2);
  auto ks = GenerateUniform(1000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = DynamicLearnedIndex::Build(*ks, SmallOptions(0.5));
  ASSERT_TRUE(idx.ok());
  std::vector<Key> added;
  for (Key k = 0; added.size() < 20 && k < 100000; ++k) {
    if (!ks->Contains(k)) {
      ASSERT_TRUE(idx->Insert(k).ok());
      added.push_back(k);
    }
  }
  EXPECT_EQ(idx->retrain_count(), 0);
  EXPECT_EQ(idx->buffer_size(), 20);
  for (Key k : added) EXPECT_TRUE(idx->Lookup(k).found) << k;
}

TEST(DynamicIndexTest, ThresholdTriggersRetrain) {
  Rng rng(3);
  auto ks = GenerateUniform(100, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = DynamicLearnedIndex::Build(*ks, SmallOptions(0.05));
  ASSERT_TRUE(idx.ok());
  // Threshold = 5 keys; the fifth insert retrains.
  std::int64_t inserted = 0;
  for (Key k = 0; inserted < 5 && k < 10000; ++k) {
    if (!ks->Contains(k)) {
      ASSERT_TRUE(idx->Insert(k).ok());
      ++inserted;
    }
  }
  EXPECT_EQ(idx->retrain_count(), 1);
  EXPECT_EQ(idx->buffer_size(), 0);
  EXPECT_EQ(idx->size(), 105);
}

TEST(DynamicIndexTest, DuplicatesRejectedEverywhere) {
  Rng rng(4);
  auto ks = GenerateUniform(100, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = DynamicLearnedIndex::Build(*ks, SmallOptions(0.5));
  ASSERT_TRUE(idx.ok());
  // Duplicate of a base key.
  EXPECT_EQ(idx->Insert(ks->at(0)).code(), StatusCode::kInvalidArgument);
  // Duplicate of a buffered key.
  Key fresh = 0;
  while (ks->Contains(fresh)) ++fresh;
  ASSERT_TRUE(idx->Insert(fresh).ok());
  EXPECT_EQ(idx->Insert(fresh).code(), StatusCode::kInvalidArgument);
  // Out of domain.
  EXPECT_EQ(idx->Insert(10000).code(), StatusCode::kOutOfRange);
}

TEST(DynamicIndexTest, ForceRetrainAbsorbsBuffer) {
  Rng rng(5);
  auto ks = GenerateUniform(200, KeyDomain{0, 19999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = DynamicLearnedIndex::Build(*ks, SmallOptions(0.5));
  ASSERT_TRUE(idx.ok());
  Key fresh = 0;
  while (ks->Contains(fresh)) ++fresh;
  ASSERT_TRUE(idx->Insert(fresh).ok());
  EXPECT_EQ(idx->buffer_size(), 1);
  ASSERT_TRUE(idx->ForceRetrain().ok());
  EXPECT_EQ(idx->buffer_size(), 0);
  EXPECT_EQ(idx->retrain_count(), 1);
  EXPECT_TRUE(idx->Lookup(fresh).found);
  // Idempotent on empty buffer.
  ASSERT_TRUE(idx->ForceRetrain().ok());
  EXPECT_EQ(idx->retrain_count(), 1);
}

TEST(DynamicIndexTest, UpdateStreamPoisoningDegradesAfterRetrain) {
  // The §VI update-path adversary: poison keys arrive as ordinary
  // inserts among legitimate traffic; after the automatic retrain the
  // base RMI is trained on the poisoned keyset and its loss jumps.
  // The adversary must use the RMI-aware attack (Algorithm 2) — a
  // single-model greedy plan concentrates all keys in one partition and
  // dilutes across the other second-stage models.
  Rng rng(6);
  auto ks = GenerateUniform(2000, KeyDomain{0, 199999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto idx = DynamicLearnedIndex::Build(*ks, SmallOptions(0.11));
  ASSERT_TRUE(idx.ok());
  const long double clean_loss = idx->BaseRmiLoss();

  // Plan the attack offline against the observable keyset.
  RmiAttackOptions attack_opts;
  attack_opts.poison_fraction = 0.10;
  attack_opts.model_size = 50;
  auto attack = PoisonRmi(*ks, attack_opts);
  ASSERT_TRUE(attack.ok());
  for (Key kp : attack->AllPoisonKeys()) {
    ASSERT_TRUE(idx->Insert(kp).ok());
  }
  ASSERT_TRUE(idx->ForceRetrain().ok());
  EXPECT_GT(static_cast<double>(idx->BaseRmiLoss()),
            2.0 * static_cast<double>(clean_loss));
}

TEST(DynamicIndexTest, Validation) {
  auto ks = KeySet::Create({1, 2, 3}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  DynamicIndexOptions opts = SmallOptions();
  opts.retrain_threshold = 0;
  EXPECT_FALSE(DynamicLearnedIndex::Build(*ks, opts).ok());
  auto empty = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(DynamicLearnedIndex::Build(*empty, SmallOptions()).ok());
}

}  // namespace
}  // namespace lispoison
