#include "common/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "attack/greedy_poisoner.h"
#include "common/fault.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/io.h"

namespace lispoison {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

struct RemoveOnExit {
  explicit RemoveOnExit(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());  // Stale file from a previous run.
  }
  ~RemoveOnExit() { std::remove(path.c_str()); }
  std::string path;
};

TEST(SnapshotTest, WriteReadRoundTrip) {
  const RemoveOnExit file(TempPath("roundtrip.snap"));
  const std::vector<std::int64_t> keys = {5, 17, 901, -3};
  const double pod = 2.5;
  SnapshotWriter writer;
  writer.AddVectorSection("keys", keys);
  writer.AddPodSection("pod", pod);
  ASSERT_TRUE(writer.WriteToFile(file.path).ok());

  auto reader = SnapshotReader::Open(file.path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  EXPECT_EQ(reader->section_count(), 2u);
  auto got_keys = reader->ReadVector<std::int64_t>("keys");
  ASSERT_TRUE(got_keys.ok());
  EXPECT_EQ(*got_keys, keys);
  auto got_pod = reader->ReadPod<double>("pod");
  ASSERT_TRUE(got_pod.ok());
  EXPECT_EQ(*got_pod, pod);
  EXPECT_EQ(reader->Find("absent").status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  auto reader = SnapshotReader::Open(TempPath("never_written.snap"));
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, RejectsOverlongSectionName) {
  SnapshotWriter writer;
  const int x = 1;
  writer.AddPodSection("a_name_longer_than_fifteen", x);
  EXPECT_EQ(writer.WriteToFile(TempPath("overlong.snap")).code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, DetectsPayloadCorruption) {
  const RemoveOnExit file(TempPath("corrupt.snap"));
  const std::vector<std::int64_t> keys(64, 7);
  SnapshotWriter writer;
  writer.AddVectorSection("keys", keys);
  ASSERT_TRUE(writer.WriteToFile(file.path).ok());

  {
    // Flip one payload byte near the end of the file.
    std::fstream f(file.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-5, std::ios::end);
    char b = 0;
    f.read(&b, 1);
    f.seekp(-5, std::ios::end);
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }
  auto reader = SnapshotReader::Open(file.path);
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, DetectsTruncation) {
  const RemoveOnExit file(TempPath("truncated.snap"));
  const std::vector<std::int64_t> keys(1024, 9);
  SnapshotWriter writer;
  writer.AddVectorSection("keys", keys);
  ASSERT_TRUE(writer.WriteToFile(file.path).ok());
  {
    std::ifstream in(file.path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(file.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto reader = SnapshotReader::Open(file.path);
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotTest, KeysetSnapshotRoundTrip) {
  const RemoveOnExit file(TempPath("keyset.snap"));
  Rng rng(11);
  auto ks = GenerateUniform(500, KeyDomain{-1000, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  ASSERT_TRUE(SaveKeysetSnapshot(*ks, file.path).ok());
  auto loaded = LoadKeysetSnapshot(file.path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->keys(), ks->keys());
  EXPECT_EQ(loaded->domain().lo, ks->domain().lo);
  EXPECT_EQ(loaded->domain().hi, ks->domain().hi);
  EXPECT_EQ(KeysetFingerprint(*loaded), KeysetFingerprint(*ks));
}

TEST(SnapshotTest, FingerprintSeparatesKeysetsAndDomains) {
  auto a = KeySet::Create({1, 2, 3}, KeyDomain{0, 10});
  auto b = KeySet::Create({1, 2, 4}, KeyDomain{0, 10});
  auto c = KeySet::Create({1, 2, 3}, KeyDomain{0, 11});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(KeysetFingerprint(*a), KeysetFingerprint(*b));
  EXPECT_NE(KeysetFingerprint(*a), KeysetFingerprint(*c));
}

// --- Checkpoint/restart -------------------------------------------------

// Bitwise trajectory equality: the resumed run must reproduce the
// uninterrupted run's long doubles exactly, not approximately.
void ExpectSameResult(const GreedyPoisonResult& got,
                      const GreedyPoisonResult& want) {
  ASSERT_EQ(got.poison_keys.size(), want.poison_keys.size());
  EXPECT_EQ(got.poison_keys, want.poison_keys);
  ASSERT_EQ(got.loss_trajectory.size(), want.loss_trajectory.size());
  for (std::size_t i = 0; i < want.loss_trajectory.size(); ++i) {
    EXPECT_EQ(got.loss_trajectory[i], want.loss_trajectory[i]) << "round " << i;
  }
  EXPECT_EQ(got.base_loss, want.base_loss);
  EXPECT_EQ(got.poisoned_loss, want.poisoned_loss);
}

TEST(GreedyCheckpointTest, KillAndResumeIsBitIdentical) {
  const RemoveOnExit file(TempPath("greedy.ckpt"));
  Rng rng(21);
  auto ks = GenerateUniform(300, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());
  const std::int64_t p = 24;

  auto uninterrupted = GreedyPoisonCdf(*ks, p);
  ASSERT_TRUE(uninterrupted.ok());

  // "Crash" after 7 committed insertions (not a multiple of every=5, so
  // this also pins the halt-forces-a-checkpoint path).
  GreedyCheckpointOptions ckpt;
  ckpt.path = file.path;
  ckpt.every = 5;
  ckpt.halt_after = 7;
  auto halted = GreedyPoisonCdfCheckpointed(*ks, p, {}, ckpt);
  ASSERT_FALSE(halted.ok());
  EXPECT_EQ(halted.status().code(), StatusCode::kFailedPrecondition);

  // Resume: same call without the halt hook.
  ckpt.halt_after = -1;
  auto resumed = GreedyPoisonCdfCheckpointed(*ks, p, {}, ckpt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  ExpectSameResult(*resumed, *uninterrupted);

  // A second resume finds the completed checkpoint and replays it
  // without running any new rounds — still bit-identical.
  auto replayed = GreedyPoisonCdfCheckpointed(*ks, p, {}, ckpt);
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  ExpectSameResult(*replayed, *uninterrupted);
}

TEST(GreedyCheckpointTest, EmptyPathDelegatesToPlainGreedy) {
  Rng rng(22);
  auto ks = GenerateUniform(120, KeyDomain{0, 999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto plain = GreedyPoisonCdf(*ks, 9);
  ASSERT_TRUE(plain.ok());
  auto ckpt = GreedyPoisonCdfCheckpointed(*ks, 9, {}, GreedyCheckpointOptions{});
  ASSERT_TRUE(ckpt.ok());
  ExpectSameResult(*ckpt, *plain);
}

TEST(GreedyCheckpointTest, RejectsCheckpointFromDifferentKeyset) {
  const RemoveOnExit file(TempPath("wrong_keyset.ckpt"));
  Rng rng(23);
  auto ks1 = GenerateUniform(200, KeyDomain{0, 9999}, &rng);
  auto ks2 = GenerateUniform(200, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks1.ok() && ks2.ok());
  ASSERT_NE(ks1->keys(), ks2->keys());

  GreedyCheckpointOptions ckpt;
  ckpt.path = file.path;
  ckpt.every = 4;
  ckpt.halt_after = 4;
  ASSERT_FALSE(GreedyPoisonCdfCheckpointed(*ks1, 16, {}, ckpt).ok());

  ckpt.halt_after = -1;
  auto wrong = GreedyPoisonCdfCheckpointed(*ks2, 16, {}, ckpt);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GreedyCheckpointTest, RejectsCheckpointForDifferentBudget) {
  const RemoveOnExit file(TempPath("wrong_budget.ckpt"));
  Rng rng(24);
  auto ks = GenerateUniform(200, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());

  GreedyCheckpointOptions ckpt;
  ckpt.path = file.path;
  ckpt.every = 4;
  ckpt.halt_after = 4;
  ASSERT_FALSE(GreedyPoisonCdfCheckpointed(*ks, 16, {}, ckpt).ok());

  ckpt.halt_after = -1;
  auto wrong = GreedyPoisonCdfCheckpointed(*ks, 20, {}, ckpt);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GreedyCheckpointTest, RefusesCorruptCheckpointLoudly) {
  const RemoveOnExit file(TempPath("corrupt.ckpt"));
  Rng rng(25);
  auto ks = GenerateUniform(200, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());

  GreedyCheckpointOptions ckpt;
  ckpt.path = file.path;
  ckpt.every = 4;
  ckpt.halt_after = 4;
  ASSERT_FALSE(GreedyPoisonCdfCheckpointed(*ks, 16, {}, ckpt).ok());

  {
    std::fstream f(file.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(-3, std::ios::end);
    char b = 0;
    f.read(&b, 1);
    f.seekp(-3, std::ios::end);
    b = static_cast<char>(b ^ 0x01);
    f.write(&b, 1);
  }
  ckpt.halt_after = -1;
  auto resumed = GreedyPoisonCdfCheckpointed(*ks, 16, {}, ckpt);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GreedyCheckpointTest, ResumeAcrossMultipleKills) {
  const RemoveOnExit file(TempPath("multi_kill.ckpt"));
  Rng rng(26);
  auto ks = GenerateUniform(250, KeyDomain{0, 19999}, &rng);
  ASSERT_TRUE(ks.ok());
  const std::int64_t p = 30;
  auto uninterrupted = GreedyPoisonCdf(*ks, p);
  ASSERT_TRUE(uninterrupted.ok());

  GreedyCheckpointOptions ckpt;
  ckpt.path = file.path;
  ckpt.every = 8;
  for (std::int64_t halt : {3, 11, 23}) {
    ckpt.halt_after = halt;
    auto halted = GreedyPoisonCdfCheckpointed(*ks, p, {}, ckpt);
    ASSERT_FALSE(halted.ok());
    EXPECT_EQ(halted.status().code(), StatusCode::kFailedPrecondition);
  }
  ckpt.halt_after = -1;
  auto resumed = GreedyPoisonCdfCheckpointed(*ks, p, {}, ckpt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  ExpectSameResult(*resumed, *uninterrupted);
}

// ---------------------------------------------------------------------------
// Fault-point and durability coverage: the snapshot write path routes
// through FAULT_POINT("snapshot.write") (modeling any syscall-level
// write failure — short write, ENOSPC, EIO) and the read path through
// FAULT_POINT("snapshot.read") (an EIO between open and mmap). The
// taxonomy the callers dispatch on must stay disjoint: NotFound =
// missing file, FailedPrecondition = present-but-malformed,
// IOError = the environment failed us (retryable).
// ---------------------------------------------------------------------------

bool FileExists(const std::string& path) {
  std::ifstream f(path);
  return f.good();
}

TEST(SnapshotFaultTest, WriteFaultUnlinksTmpAndReportsIoError) {
  const RemoveOnExit file(TempPath("write_fault.snap"));
  const RemoveOnExit tmp(file.path + ".tmp");
  SnapshotWriter writer;
  const std::vector<std::int64_t> keys = {1, 2, 3};
  writer.AddVectorSection("keys", keys);

  FaultSpec always;
  always.probability = 1.0;
  FaultPlan(/*seed=*/101).Arm("snapshot.write", always).Activate();
  const Status st = writer.WriteToFile(file.path);
  FaultRegistry::Global().DisarmAll();

  // The failed publish left NOTHING behind: no tmp turd, no partial
  // destination — the invariant that makes the write path retryable.
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.message();
  EXPECT_FALSE(FileExists(tmp.path));
  EXPECT_FALSE(FileExists(file.path));

  // The identical writer succeeds once the fault clears (the transient
  // ENOSPC story), and the published file round-trips.
  ASSERT_TRUE(writer.WriteToFile(file.path).ok());
  auto reader = SnapshotReader::Open(file.path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  auto got = reader->ReadVector<std::int64_t>("keys");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, keys);
}

TEST(SnapshotFaultTest, ScheduledWriteFaultFiresExactlyOnce) {
  const RemoveOnExit file(TempPath("write_fault_once.snap"));
  SnapshotWriter writer;
  const double pod = 4.25;
  writer.AddPodSection("pod", pod);

  FaultSpec first_only;
  first_only.fire_on_hits = {1};
  FaultPlan(/*seed=*/102).Arm("snapshot.write", first_only).Activate();
  EXPECT_EQ(writer.WriteToFile(file.path).code(), StatusCode::kIOError);
  EXPECT_TRUE(writer.WriteToFile(file.path).ok());  // Hit 2: clean.
  FaultRegistry::Global().DisarmAll();
  EXPECT_EQ(FaultRegistry::Global().GetPoint("snapshot.write")->fires(), 1);
}

TEST(SnapshotFaultTest, ReadFaultIsIoErrorDistinctFromTheTaxonomy) {
  const RemoveOnExit file(TempPath("read_fault.snap"));
  SnapshotWriter writer;
  const int x = 7;
  writer.AddPodSection("pod", x);
  ASSERT_TRUE(writer.WriteToFile(file.path).ok());

  FaultSpec always;
  always.probability = 1.0;
  FaultPlan(/*seed=*/103).Arm("snapshot.read", always).Activate();
  const Status st = SnapshotReader::Open(file.path).status();
  FaultRegistry::Global().DisarmAll();

  // A disk-level read error is IOError: NOT NotFound (the file exists)
  // and NOT FailedPrecondition (the bytes are fine) — callers retry
  // IOError but treat the other two as permanent.
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st.message();
  EXPECT_TRUE(SnapshotReader::Open(file.path).ok());
}

TEST(SnapshotFaultTest, FailureTaxonomyStaysDisjoint) {
  const RemoveOnExit file(TempPath("taxonomy.snap"));
  SnapshotWriter writer;
  const int x = 9;
  writer.AddPodSection("pod", x);
  ASSERT_TRUE(writer.WriteToFile(file.path).ok());

  // Missing file: NotFound.
  EXPECT_EQ(SnapshotReader::Open(TempPath("taxonomy_missing.snap"))
                .status()
                .code(),
            StatusCode::kNotFound);
  // Malformed file (bad magic): FailedPrecondition.
  {
    std::ofstream corrupt(file.path, std::ios::binary | std::ios::in);
    corrupt.seekp(0);
    corrupt.write("XXXXXXXX", 8);
  }
  EXPECT_EQ(SnapshotReader::Open(file.path).status().code(),
            StatusCode::kFailedPrecondition);
  // Environment failure (injected): IOError — asserted disjoint above.
}

}  // namespace
}  // namespace lispoison
