#include "eval/ratio_loss.h"

#include <gtest/gtest.h>

#include "attack/greedy_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

TEST(RatioLossTest, MatchesAttackReportedRatio) {
  Rng rng(1);
  auto ks = GenerateUniform(120, KeyDomain{0, 1199}, &rng);
  ASSERT_TRUE(ks.ok());
  auto attack = GreedyPoisonCdf(*ks, 12);
  ASSERT_TRUE(attack.ok());
  auto poisoned = ApplyPoison(*ks, attack->poison_keys);
  ASSERT_TRUE(poisoned.ok());
  auto ratio = ComputeRatioLoss(*ks, *poisoned);
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, attack->RatioLoss(), 1e-6 * attack->RatioLoss());
}

TEST(RatioLossTest, IdenticalSetsGiveOne) {
  Rng rng(2);
  auto ks = GenerateUniform(50, KeyDomain{0, 499}, &rng);
  ASSERT_TRUE(ks.ok());
  auto ratio = ComputeRatioLoss(*ks, *ks);
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, 1.0, 1e-12);
}

TEST(RatioLossTest, EmptyInputsFail) {
  auto empty = KeySet::Create({}, KeyDomain{0, 10});
  auto some = KeySet::Create({1, 2}, KeyDomain{0, 10});
  ASSERT_TRUE(empty.ok());
  ASSERT_TRUE(some.ok());
  EXPECT_FALSE(ComputeRatioLoss(*empty, *some).ok());
  EXPECT_FALSE(ComputeRatioLoss(*some, *empty).ok());
}

}  // namespace
}  // namespace lispoison
