#include "attack/single_point.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

TEST(SinglePointTest, PoisonedLossExceedsBase) {
  Rng rng(1);
  auto ks = GenerateUniform(100, KeyDomain{0, 999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = OptimalSinglePoint(*ks);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(static_cast<double>(result->poisoned_loss),
            static_cast<double>(result->base_loss));
  EXPECT_GT(result->RatioLoss(), 1.0);
}

TEST(SinglePointTest, PoisonKeyIsInteriorAndUnoccupied) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    auto ks = GenerateUniform(50, KeyDomain{0, 499}, &rng);
    ASSERT_TRUE(ks.ok());
    auto result = OptimalSinglePoint(*ks);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(ks->Contains(result->poison_key));
    EXPECT_GT(result->poison_key, ks->keys().front());
    EXPECT_LT(result->poison_key, ks->keys().back());
  }
}

TEST(SinglePointTest, ExteriorAllowedWhenInteriorOnlyOff) {
  // Two adjacent keys: no interior gap, but exterior candidates exist.
  auto ks = KeySet::Create({10, 11}, KeyDomain{0, 20});
  ASSERT_TRUE(ks.ok());
  AttackOptions interior;
  EXPECT_EQ(OptimalSinglePoint(*ks, interior).status().code(),
            StatusCode::kResourceExhausted);
  AttackOptions anywhere;
  anywhere.interior_only = false;
  auto result = OptimalSinglePoint(*ks, anywhere);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->poison_key < 10 || result->poison_key > 11);
}

TEST(SinglePointTest, EmptyKeysetFails) {
  auto ks = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(OptimalSinglePoint(*ks).ok());
}

TEST(SinglePointTest, EvenlySpacedKeysGainLittleButPositive) {
  // A perfectly linear CDF has zero base loss; one poisoning key makes
  // the ratio infinite by definition (the paper's metric blows up).
  auto ks = GenerateEvenlySpaced(11, KeyDomain{0, 100});
  ASSERT_TRUE(ks.ok());
  auto result = OptimalSinglePoint(*ks);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(static_cast<double>(result->base_loss), 0.0, 1e-9);
  EXPECT_GT(static_cast<double>(result->poisoned_loss), 0.0);
  EXPECT_TRUE(std::isinf(result->RatioLoss()));
}

TEST(SafeRatioLossTest, Cases) {
  EXPECT_DOUBLE_EQ(SafeRatioLoss(10.0L, 2.0L), 5.0);
  EXPECT_TRUE(std::isinf(SafeRatioLoss(1.0L, 0.0L)));
  EXPECT_DOUBLE_EQ(SafeRatioLoss(0.0L, 0.0L), 1.0);
}

}  // namespace
}  // namespace lispoison
