// Differential proof that the incremental GreedyPoisonCdf selects
// byte-identical poison sequences to the pre-refactor rebuild-per-round
// algorithm. Two oracles are compared against: the library's exported
// GreedyPoisonCdfReference, and an independent inline copy of the
// original Algorithm 1 loop kept verbatim in this test so a regression
// in the exported reference cannot mask one in the engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "attack/greedy_poisoner.h"
#include "attack/loss_landscape.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"

namespace lispoison {
namespace {

/// Verbatim pre-refactor Algorithm 1: rebuild the KeySet and the
/// landscape every round, commit the argmax gap endpoint.
std::vector<Key> InlineReferenceGreedy(const KeySet& keyset, std::int64_t p,
                                       bool interior_only) {
  std::vector<Key> poison_keys;
  std::vector<Key> work = keyset.keys();
  const KeyDomain domain = keyset.domain();
  // The oracle stays on the exhaustive scan — pruning (the default) is
  // exactly what this test must be independent of.
  LossLandscape::ArgmaxOptions exhaustive;
  exhaustive.prune = false;
  for (std::int64_t round = 0; round < p; ++round) {
    auto current = KeySet::Create(work, domain);
    if (!current.ok()) break;
    auto landscape = LossLandscape::Create(*current);
    if (!landscape.ok()) break;
    auto best = landscape->FindOptimal(interior_only, nullptr, nullptr,
                                       exhaustive);
    if (!best.ok()) break;
    const Key kp = best->key;
    work.insert(std::lower_bound(work.begin(), work.end(), kp), kp);
    poison_keys.push_back(kp);
  }
  return poison_keys;
}

void ExpectIdenticalAttacks(const KeySet& keyset, std::int64_t p,
                            bool interior_only) {
  AttackOptions options;
  options.interior_only = interior_only;
  auto fast = GreedyPoisonCdf(keyset, p, options);
  auto reference = GreedyPoisonCdfReference(keyset, p, options);
  ASSERT_TRUE(fast.ok()) << fast.status().message();
  ASSERT_TRUE(reference.ok()) << reference.status().message();

  // Byte-identical selections and bit-identical losses.
  EXPECT_EQ(fast->poison_keys, reference->poison_keys);
  EXPECT_EQ(fast->base_loss, reference->base_loss);
  EXPECT_EQ(fast->poisoned_loss, reference->poisoned_loss);
  ASSERT_EQ(fast->loss_trajectory.size(), reference->loss_trajectory.size());
  for (std::size_t i = 0; i < fast->loss_trajectory.size(); ++i) {
    EXPECT_EQ(fast->loss_trajectory[i], reference->loss_trajectory[i])
        << "round " << i;
  }

  EXPECT_EQ(fast->poison_keys,
            InlineReferenceGreedy(keyset, p, interior_only));
}

TEST(GreedyDifferentialTest, UniformKeysInterior) {
  Rng rng(21);
  auto ks = GenerateUniform(500, KeyDomain{0, 49999}, &rng);
  ASSERT_TRUE(ks.ok());
  ExpectIdenticalAttacks(*ks, 50, /*interior_only=*/true);
}

TEST(GreedyDifferentialTest, UniformKeysFullDomain) {
  Rng rng(22);
  auto ks = GenerateUniform(300, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());
  ExpectIdenticalAttacks(*ks, 40, /*interior_only=*/false);
}

TEST(GreedyDifferentialTest, LogNormalKeys) {
  Rng rng(23);
  auto ks = GenerateLogNormal(400, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  ExpectIdenticalAttacks(*ks, 60, /*interior_only=*/true);
}

TEST(GreedyDifferentialTest, ClusteredKeys) {
  Rng rng(24);
  const std::vector<ClusterSpec> clusters = {
      {0.15, 0.02, 1.0}, {0.5, 0.01, 2.0}, {0.85, 0.03, 1.0}};
  auto ks = GenerateClustered(600, KeyDomain{0, 199999}, clusters, &rng);
  ASSERT_TRUE(ks.ok());
  ExpectIdenticalAttacks(*ks, 80, /*interior_only=*/true);
}

TEST(GreedyDifferentialTest, DenseDomainNearSaturation) {
  // Dense keyset: the poisoning range nearly saturates, exercising the
  // single-key-gap and gap-erasure paths.
  Rng rng(25);
  auto ks = GenerateUniform(120, KeyDomain{0, 199}, &rng);
  ASSERT_TRUE(ks.ok());
  ExpectIdenticalAttacks(*ks, 30, /*interior_only=*/true);
}

TEST(GreedyDifferentialTest, EvenlySpacedZeroLossBase) {
  auto ks = GenerateEvenlySpaced(100, KeyDomain{0, 990});
  ASSERT_TRUE(ks.ok());
  ExpectIdenticalAttacks(*ks, 25, /*interior_only=*/true);
}

TEST(GreedyDifferentialTest, ParallelArgmaxIsThreadCountIndependent) {
  // The chunked gap-range scan on the ThreadPool must select the exact
  // poison sequence of the serial scan for every worker count (fixed
  // chunk boundaries, strict-> reduction in chunk order).
  // >= 3 argmax chunks (2048 gaps each), so the pool reduction really
  // crosses chunk boundaries.
  Rng rng(26);
  auto ks = GenerateUniform(6000, KeyDomain{0, 1199999}, &rng);
  ASSERT_TRUE(ks.ok());
  AttackOptions serial;
  serial.num_threads = 1;
  auto baseline = GreedyPoisonCdf(*ks, 120, serial);
  ASSERT_TRUE(baseline.ok());
  for (const int threads : {2, 3, 8}) {
    AttackOptions parallel;
    parallel.num_threads = threads;
    auto got = GreedyPoisonCdf(*ks, 120, parallel);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(got->poison_keys, baseline->poison_keys)
        << threads << " threads";
    EXPECT_EQ(got->base_loss, baseline->base_loss);
    EXPECT_EQ(got->poisoned_loss, baseline->poisoned_loss);
    for (std::size_t i = 0; i < baseline->loss_trajectory.size(); ++i) {
      EXPECT_EQ(got->loss_trajectory[i], baseline->loss_trajectory[i])
          << "round " << i << " with " << threads << " threads";
    }
  }
  // And the parallel selection still matches the rebuild-per-round
  // oracle end to end.
  EXPECT_EQ(baseline->poison_keys,
            InlineReferenceGreedy(*ks, 120, /*interior_only=*/true));
}

TEST(GreedyDifferentialTest, ParallelArgmaxClusteredKeys) {
  // Clustered keys produce few huge gaps plus many small ones — the
  // chunking layout least like the uniform case.
  Rng rng(27);
  const std::vector<ClusterSpec> clusters = {
      {0.1, 0.01, 1.0}, {0.6, 0.05, 3.0}, {0.9, 0.002, 1.0}};
  auto ks = GenerateClustered(5000, KeyDomain{0, 1999999}, clusters, &rng);
  ASSERT_TRUE(ks.ok());
  AttackOptions serial;
  AttackOptions parallel;
  parallel.num_threads = 4;
  auto a = GreedyPoisonCdf(*ks, 60, serial);
  auto b = GreedyPoisonCdf(*ks, 60, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->poison_keys, b->poison_keys);
  EXPECT_EQ(a->poisoned_loss, b->poisoned_loss);
}

TEST(GreedyDifferentialTest, ExhaustionErrorsMatch) {
  // Budget exceeding the unoccupied interior: both paths must fail with
  // ResourceExhausted after the same number of committed keys.
  auto ks = KeySet::Create({0, 2, 4, 6, 8}, KeyDomain{0, 8});
  ASSERT_TRUE(ks.ok());
  auto fast = GreedyPoisonCdf(*ks, 10);
  auto reference = GreedyPoisonCdfReference(*ks, 10);
  EXPECT_EQ(fast.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(reference.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace lispoison
