#include "attack/brute_force.h"

#include <gtest/gtest.h>

#include "attack/greedy_poisoner.h"
#include "attack/single_point.h"
#include "common/rng.h"
#include "data/generators.h"

namespace lispoison {
namespace {

// The headline correctness claim of Section IV-C: the O(n) endpoint
// attack must return exactly the brute-force optimum.
TEST(BruteForceOracleTest, OptimalSinglePointMatchesBruteForce) {
  Rng rng(1);
  for (int trial = 0; trial < 25; ++trial) {
    const std::int64_t n = 10 + rng.UniformInt(0, 40);
    const Key domain_hi = 100 + rng.UniformInt(0, 400);
    auto ks = GenerateUniform(n, KeyDomain{0, domain_hi}, &rng);
    ASSERT_TRUE(ks.ok());
    auto fast = OptimalSinglePoint(*ks);
    auto slow = BruteForceSinglePoint(*ks);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    // Equal loss (the argmax key may tie; the loss value must match).
    EXPECT_NEAR(static_cast<double>(fast->poisoned_loss),
                static_cast<double>(slow->poisoned_loss),
                1e-9 * std::max(1.0,
                                static_cast<double>(slow->poisoned_loss)))
        << "trial " << trial << " n=" << n << " m=" << domain_hi + 1;
  }
}

TEST(BruteForceOracleTest, MatchesOnLogNormalKeys) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    auto ks = GenerateLogNormal(30, KeyDomain{0, 599}, &rng);
    ASSERT_TRUE(ks.ok());
    auto fast = OptimalSinglePoint(*ks);
    auto slow = BruteForceSinglePoint(*ks);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_NEAR(static_cast<double>(fast->poisoned_loss),
                static_cast<double>(slow->poisoned_loss),
                1e-9 * std::max(1.0,
                                static_cast<double>(slow->poisoned_loss)));
  }
}

TEST(BruteForceMultiTest, GreedyMatchesExhaustiveOnTinyInstances) {
  // The paper reports greedy matched brute force on every tested
  // dataset; verify on instances small enough to enumerate.
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    auto ks = GenerateUniform(8, KeyDomain{0, 29}, &rng);
    ASSERT_TRUE(ks.ok());
    const std::int64_t p = 2;
    auto greedy = GreedyPoisonCdf(*ks, p);
    auto exhaustive = BruteForceMultiPoint(*ks, p);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(exhaustive.ok());
    // Greedy is a heuristic: allow it to reach at least 95% of optimal.
    EXPECT_GE(static_cast<double>(greedy->poisoned_loss),
              0.95 * static_cast<double>(exhaustive->poisoned_loss))
        << "trial " << trial;
    // And never beat the true optimum.
    EXPECT_LE(static_cast<double>(greedy->poisoned_loss),
              static_cast<double>(exhaustive->poisoned_loss) + 1e-9);
  }
}

TEST(BruteForceMultiTest, CombinationGuardTriggers) {
  Rng rng(4);
  auto ks = GenerateUniform(50, KeyDomain{0, 9999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = BruteForceMultiPoint(*ks, 5, AttackOptions{},
                                     /*max_combinations=*/1000);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(BruteForceMultiTest, ParameterValidation) {
  auto ks = KeySet::Create({1, 5, 9}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_FALSE(BruteForceMultiPoint(*ks, 0).ok());
  auto empty = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(BruteForceMultiPoint(*empty, 1).ok());
  EXPECT_FALSE(BruteForceSinglePoint(*empty).ok());
}

TEST(BruteForceMultiTest, InsufficientCandidatesFails) {
  // Interior of {4,6} has exactly one free key (5); p=2 must fail.
  auto ks = KeySet::Create({4, 6}, KeyDomain{0, 10});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(BruteForceMultiPoint(*ks, 2).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace lispoison
