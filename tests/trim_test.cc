#include "defense/trim.h"

#include <gtest/gtest.h>

#include "attack/greedy_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

TEST(TrimTest, KeepsExpectedCount) {
  Rng rng(1);
  auto ks = GenerateUniform(200, KeyDomain{0, 1999}, &rng);
  ASSERT_TRUE(ks.ok());
  TrimOptions opts;
  opts.assumed_poison_fraction = 0.10;
  auto result = TrimDefense(*ks, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kept_keys.size(), 180u);
  EXPECT_EQ(result->removed_keys.size(), 20u);
}

TEST(TrimTest, TrimmedLossNotWorseThanFullLoss) {
  Rng rng(2);
  auto ks = GenerateUniform(300, KeyDomain{0, 2999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto poisoned_attack = GreedyPoisonCdf(*ks, 30);
  ASSERT_TRUE(poisoned_attack.ok());
  auto poisoned = ApplyPoison(*ks, poisoned_attack->poison_keys);
  ASSERT_TRUE(poisoned.ok());
  TrimOptions opts;
  opts.assumed_poison_fraction = 30.0 / 330.0;
  auto result = TrimDefense(*poisoned, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(static_cast<double>(result->trimmed_loss),
            static_cast<double>(poisoned_attack->poisoned_loss));
}

TEST(TrimTest, StrugglesAgainstInteriorPoisoning) {
  // Section VI's claim: TRIM cannot cleanly separate CDF poisons because
  // they hide inside dense legitimate regions. Expect recall well below
  // 1 and/or meaningful collateral damage on most instances.
  Rng rng(3);
  double total_collateral = 0;
  int trials = 0;
  for (int t = 0; t < 5; ++t) {
    auto ks = GenerateUniform(200, KeyDomain{0, 1999}, &rng);
    ASSERT_TRUE(ks.ok());
    auto attack = GreedyPoisonCdf(*ks, 20);
    ASSERT_TRUE(attack.ok());
    auto poisoned = ApplyPoison(*ks, attack->poison_keys);
    ASSERT_TRUE(poisoned.ok());
    TrimOptions opts;
    opts.assumed_poison_fraction = 20.0 / 220.0;
    auto result = TrimDefense(*poisoned, opts);
    ASSERT_TRUE(result.ok());
    const DefenseQuality q =
        ScoreDefense(result->removed_keys, attack->poison_keys);
    total_collateral += static_cast<double>(q.false_positives);
    ++trials;
  }
  // Across trials TRIM removes legitimate keys as collateral.
  EXPECT_GT(total_collateral / trials, 0.5);
}

TEST(TrimTest, CleanDataMostlyConverges) {
  Rng rng(4);
  auto ks = GenerateUniform(150, KeyDomain{0, 1499}, &rng);
  ASSERT_TRUE(ks.ok());
  auto result = TrimDefense(*ks, TrimOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->iterations, 1);
  EXPECT_LE(result->iterations, 64);
}

TEST(TrimTest, Validation) {
  auto empty = KeySet::Create({}, KeyDomain{0, 10});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(TrimDefense(*empty).ok());

  auto tiny = KeySet::Create({1, 2}, KeyDomain{0, 10});
  ASSERT_TRUE(tiny.ok());
  TrimOptions opts;
  opts.assumed_poison_fraction = 0.9;  // Would keep < 2 keys.
  EXPECT_FALSE(TrimDefense(*tiny, opts).ok());

  opts.assumed_poison_fraction = -0.1;
  EXPECT_FALSE(TrimDefense(*tiny, opts).ok());
  opts.assumed_poison_fraction = 1.0;
  EXPECT_FALSE(TrimDefense(*tiny, opts).ok());
}

TEST(TrimTest, ZeroAssumedFractionKeepsEverything) {
  auto ks = KeySet::Create({1, 5, 9, 14}, KeyDomain{0, 20});
  ASSERT_TRUE(ks.ok());
  TrimOptions opts;
  opts.assumed_poison_fraction = 0.0;
  auto result = TrimDefense(*ks, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kept_keys.size(), 4u);
  EXPECT_TRUE(result->removed_keys.empty());
  EXPECT_TRUE(result->converged);
}

TEST(ScoreDefenseTest, PrecisionRecall) {
  const std::vector<Key> removed{1, 2, 3, 4};
  const std::vector<Key> poison{3, 4, 5, 6};
  const DefenseQuality q = ScoreDefense(removed, poison);
  EXPECT_EQ(q.true_positives, 2);
  EXPECT_EQ(q.false_positives, 2);
  EXPECT_EQ(q.false_negatives, 2);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
}

TEST(ScoreDefenseTest, EmptyCases) {
  const DefenseQuality none = ScoreDefense({}, {1, 2});
  EXPECT_EQ(none.true_positives, 0);
  EXPECT_EQ(none.false_negatives, 2);
  EXPECT_DOUBLE_EQ(none.precision, 0.0);
  const DefenseQuality no_poison = ScoreDefense({1}, {});
  EXPECT_EQ(no_poison.false_positives, 1);
  EXPECT_DOUBLE_EQ(no_poison.recall, 0.0);
}

}  // namespace
}  // namespace lispoison
