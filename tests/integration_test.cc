// End-to-end integration tests spanning data generation, attack,
// index construction, lookup, and defense — the full pipeline a
// downstream user of the library would run.

#include <gtest/gtest.h>

#include <cmath>

#include "attack/greedy_poisoner.h"
#include "attack/rmi_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/surrogates.h"
#include "defense/trim.h"
#include "eval/experiments.h"
#include "index/btree.h"
#include "index/learned_index.h"

namespace lispoison {
namespace {

TEST(IntegrationTest, FullPipelineUniform) {
  // Generate -> attack -> victim trains on poisoned data -> all lookups
  // still succeed but cost more -> B+Tree is unaffected.
  Rng rng(1);
  auto ks = GenerateUniform(3000, KeyDomain{0, 299999}, &rng);
  ASSERT_TRUE(ks.ok());

  RmiAttackOptions attack_opts;
  attack_opts.poison_fraction = 0.10;
  attack_opts.model_size = 150;
  auto attack = PoisonRmi(*ks, attack_opts);
  ASSERT_TRUE(attack.ok());

  auto poisoned = ks->Union(attack->AllPoisonKeys());
  ASSERT_TRUE(poisoned.ok());

  RmiOptions idx_opts;
  idx_opts.target_model_size = 165;  // (n + p) / N keeps N models.
  idx_opts.root_kind = RootModelKind::kOracle;
  auto clean_idx = LearnedIndex::Build(*ks, idx_opts);
  auto poisoned_idx = LearnedIndex::Build(*poisoned, idx_opts);
  ASSERT_TRUE(clean_idx.ok());
  ASSERT_TRUE(poisoned_idx.ok());

  // Correctness: every legitimate key is still found after poisoning.
  for (std::int64_t i = 0; i < ks->size(); i += 17) {
    EXPECT_TRUE(poisoned_idx->Lookup(ks->at(i)).found);
  }

  // Cost: poisoned index does more last-mile work per lookup.
  const LookupStats clean_stats = clean_idx->ProfileAllKeys();
  const LookupStats poisoned_stats = poisoned_idx->ProfileAllKeys();
  EXPECT_GT(poisoned_stats.MeanAbsError(), clean_stats.MeanAbsError());

  // Control: B+Tree lookup cost is oblivious to the poisoning.
  auto clean_tree = BPlusTree::Build(*ks, 64);
  auto poisoned_tree = BPlusTree::Build(*poisoned, 64);
  ASSERT_TRUE(clean_tree.ok());
  ASSERT_TRUE(poisoned_tree.ok());
  EXPECT_EQ(clean_tree->height(), poisoned_tree->height());
}

TEST(IntegrationTest, SurrogatePipelineMiami) {
  Rng rng(2);
  auto ks = MakeMiamiSalariesSurrogate(&rng, 1500);
  ASSERT_TRUE(ks.ok());
  RmiAttackOptions opts;
  opts.poison_fraction = 0.20;
  opts.model_size = 50;
  opts.alpha = 3.0;
  auto attack = PoisonRmi(*ks, opts);
  ASSERT_TRUE(attack.ok());
  // Fig. 7 regime: RMI error grows by at least ~2x at 20% poisoning.
  EXPECT_GT(attack->rmi_ratio_loss, 2.0);
}

TEST(IntegrationTest, DefenseRecoversSomeLossButHurtsLegitKeys) {
  Rng rng(3);
  auto ks = GenerateUniform(400, KeyDomain{0, 3999}, &rng);
  ASSERT_TRUE(ks.ok());
  auto attack = GreedyPoisonCdf(*ks, 40);
  ASSERT_TRUE(attack.ok());
  auto poisoned = ApplyPoison(*ks, attack->poison_keys);
  ASSERT_TRUE(poisoned.ok());

  TrimOptions trim_opts;
  trim_opts.assumed_poison_fraction = 40.0 / 440.0;
  auto defense = TrimDefense(*poisoned, trim_opts);
  ASSERT_TRUE(defense.ok());

  // TRIM reduces the training loss relative to the poisoned fit...
  EXPECT_LT(static_cast<double>(defense->trimmed_loss),
            static_cast<double>(attack->poisoned_loss));
  // ...but pays for it: the kept set is smaller than K, so either some
  // legitimate keys were removed or some poisons survive.
  const DefenseQuality q =
      ScoreDefense(defense->removed_keys, attack->poison_keys);
  EXPECT_TRUE(q.false_positives > 0 || q.false_negatives > 0);
}

TEST(IntegrationTest, ExperimentRunnerEndToEnd) {
  // Drive the Fig. 5 runner at miniature scale and sanity-check the
  // qualitative claims of the paper hold even there.
  LinearGridConfig config;
  config.key_counts = {100, 300};
  config.densities = {0.2, 0.8};
  config.poison_pcts = {6, 14};
  config.trials = 4;
  config.seed = 99;
  auto cells = RunLinearPoisonGrid(config);
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 8u);
  // Claim 1: for fixed n and density, ratio grows with poisoning %.
  for (std::size_t i = 0; i + 1 < cells->size(); i += 2) {
    EXPECT_GE((*cells)[i + 1].ratio_loss.median,
              (*cells)[i].ratio_loss.median * 0.7)
        << "cell " << i;
  }
  // Claim 2: lower density (more candidate keys) allows more damage:
  // compare density 0.2 vs 0.8 at 14% for each n.
  for (std::size_t base : {0u, 4u}) {
    const auto& sparse = (*cells)[base + 1];     // d=0.2, pct=14.
    const auto& dense = (*cells)[base + 3];      // d=0.8, pct=14.
    EXPECT_GT(sparse.ratio_loss.median, dense.ratio_loss.median * 0.5);
  }
}

TEST(IntegrationTest, LookupDegradationTracksRatioLoss) {
  // The implementation-independent Ratio Loss must translate into real
  // extra probes on the learned index (the paper's motivation for the
  // metric).
  Rng rng(4);
  auto ks = GenerateUniform(4000, KeyDomain{0, 399999}, &rng);
  ASSERT_TRUE(ks.ok());

  RmiOptions idx_opts;
  idx_opts.target_model_size = 200;
  idx_opts.root_kind = RootModelKind::kOracle;
  auto clean_idx = LearnedIndex::Build(*ks, idx_opts);
  ASSERT_TRUE(clean_idx.ok());
  const double clean_probes = clean_idx->ProfileAllKeys().MeanProbes();

  RmiAttackOptions attack_opts;
  attack_opts.poison_fraction = 0.15;
  attack_opts.model_size = 200;
  auto attack = PoisonRmi(*ks, attack_opts);
  ASSERT_TRUE(attack.ok());
  auto poisoned = ks->Union(attack->AllPoisonKeys());
  ASSERT_TRUE(poisoned.ok());
  auto poisoned_idx = LearnedIndex::Build(*poisoned, idx_opts);
  ASSERT_TRUE(poisoned_idx.ok());
  const double poisoned_probes =
      poisoned_idx->ProfileAllKeys().MeanProbes();
  EXPECT_GT(poisoned_probes, clean_probes);
}

}  // namespace
}  // namespace lispoison
