// JsonWriter: structural correctness, escaping, number formatting, and
// a ServingReport round-trip sanity check against a tiny hand parser.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <sstream>

#include "common/json_writer.h"
#include "workload/serving_report.h"

namespace lispoison {
namespace {

TEST(JsonWriterTest, FlatObject) {
  std::ostringstream os;
  JsonWriter w(&os, /*pretty=*/false);
  w.BeginObject();
  w.KV("a", std::int64_t{1});
  w.KV("b", "two");
  w.KV("c", 2.5);
  w.KV("d", true);
  w.Key("e");
  w.Null();
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"a":1,"b":"two","c":2.5,"d":true,"e":null})");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  std::ostringstream os;
  JsonWriter w(&os, /*pretty=*/false);
  w.BeginObject();
  w.Key("rows");
  w.BeginArray();
  w.BeginObject();
  w.KV("x", std::int64_t{1});
  w.EndObject();
  w.BeginObject();
  w.KV("x", std::int64_t{2});
  w.EndObject();
  w.Int(3);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"rows":[{"x":1},{"x":2},3]})");
}

TEST(JsonWriterTest, EmptyContainers) {
  std::ostringstream os;
  JsonWriter w(&os, /*pretty=*/false);
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.EndArray();
  w.Key("o");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(os.str(), R"({"a":[],"o":{}})");
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonWriter::Escape("plain"), "\"plain\"");
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonWriter::Escape("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(JsonWriter::Escape("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(JsonWriter::Escape(std::string("ctl\x01") + "x"),
            "\"ctl\\u0001x\"");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(&os, /*pretty=*/false);
  w.BeginArray();
  w.Double(std::nan(""));
  w.Double(INFINITY);
  w.Double(1.5);
  w.EndArray();
  EXPECT_EQ(os.str(), "[null,null,1.5]");
}

TEST(JsonWriterTest, PrettyPrintingIndents) {
  std::ostringstream os;
  JsonWriter w(&os, /*pretty=*/true);
  w.BeginObject();
  w.KV("a", std::int64_t{1});
  w.EndObject();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

/// Minimal structural validator: balanced braces/brackets outside
/// strings, no trailing commas. Enough to catch emission bugs without a
/// JSON dependency (tools/bench_compare.py does full parsing in CI).
bool StructurallyValidJson(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false;
  char prev_significant = 0;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      depth += 1;
    } else if (c == '}' || c == ']') {
      if (depth == 0) return false;
      if (prev_significant == ',') return false;  // Trailing comma.
      depth -= 1;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev_significant = c;
  }
  return depth == 0 && !in_string;
}

TEST(ServingReportTest, EmitsStructurallyValidJson) {
  ServingReport report;
  report.hardware_concurrency = 8;
  report.num_threads = 4;
  report.ops_per_config = 100;
  report.poison_fraction = 0.1;

  for (const char* variant : {"clean", "poisoned"}) {
    ServingConfigResult config;
    config.workload = "read_only_uniform";
    config.backend = "rmi";
    config.variant = variant;
    config.keys = 1000;
    config.seed = 42;
    config.result.total_ops = 100;
    config.result.reads = 100;
    config.result.read_found = 100;
    config.result.total_work = variant[0] == 'c' ? 500 : 900;
    config.result.elapsed_seconds = 0.01;
    for (int i = 0; i < 100; ++i) {
      config.result.latency.Record(100 + i);
      config.result.read_latency.Record(100 + i);
    }
    report.Add(std::move(config));
  }

  std::ostringstream os;
  report.WriteJson(&os);
  const std::string json = os.str();
  EXPECT_TRUE(StructurallyValidJson(json)) << json;
  // The comparison row for the clean/poisoned pair must be present with
  // the work ratio the configs imply.
  EXPECT_NE(json.find("\"comparisons\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_work_ratio\": 1.8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hardware_concurrency\": 8"), std::string::npos);
}

}  // namespace
}  // namespace lispoison
