// Compaction-recovery coverage: the bounded-retry/backoff/give-up state
// machine under injected rebuild failures, and the remove/tombstone
// membership semantics the adversary's delete stream rides on.
//
// Two regression layers are pinned here:
//
//  1. The give-up path (all retries exhausted — or retries disabled via
//     compaction_max_retries=0, which reproduces the old immediate
//     give-up behavior exactly): a failed compaction doubles the
//     shard's trigger threshold, capped at 8x, and the next successful
//     compaction restores the *configured* threshold. Before the
//     original fix the doubled value stuck forever.
//
//  2. The retry path (this PR): transient rebuild failures are retried
//     on the maintenance thread with jittered exponential backoff
//     *before* any threshold doubling, so a fault that clears within
//     the retry budget costs latency, never degraded thresholds. The
//     jitter is drawn from a per-shard Rng forked from backoff_seed, so
//     a fixed seed replays the exact backoff schedule.
//
// Faults are injected through the seeded FAULT_POINT registry
// ("compaction.rebuild"), the same plumbing the chaos harness storms.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"
#include "workload/search_backend.h"

namespace lispoison {
namespace {

KeySet TestKeys(std::int64_t n, std::uint64_t seed = 17) {
  Rng rng(seed);
  auto ks = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  EXPECT_TRUE(ks.ok());
  return *ks;
}

std::unique_ptr<SearchBackend> MakeBackend(const KeySet& ks,
                                           std::int64_t compact_threshold,
                                           int max_retries = 0,
                                           bool sync_compaction = true) {
  BackendOptions opts;
  opts.rmi.target_model_size = 200;
  opts.num_shards = 1;  // One shard: deterministic trigger accounting.
  opts.compact_threshold = compact_threshold;
  opts.sync_compaction = sync_compaction;
  opts.compaction_max_retries = max_retries;
  // Tiny backoffs: the ladder shape is what is under test, not the wait.
  opts.compaction_backoff_base_us = 50;
  opts.compaction_backoff_max_us = 400;
  auto backend = CreateBackend(BackendKind::kRmi, ks, opts);
  EXPECT_TRUE(backend.ok()) << backend.status().message();
  return std::move(*backend);
}

/// Inserts `count` fresh keys (not in the base keyset) one by one.
void InsertFresh(SearchBackend* backend, const KeySet& base, int count,
                 Key start) {
  std::set<Key> taken(base.keys().begin(), base.keys().end());
  Key k = start;
  for (int i = 0; i < count; ++i) {
    while (taken.count(k)) ++k;
    ASSERT_TRUE(backend->Insert(k).ok());
    taken.insert(k);
    ++k;
  }
}

/// Arms "compaction.rebuild" alone with \p spec under \p seed.
void ArmRebuildFault(std::uint64_t seed, const FaultSpec& spec) {
  FaultPlan(seed).Arm("compaction.rebuild", spec).Activate();
}

TEST(CompactionRecoveryTest, FailedCompactionDoublesThenRestoresThreshold) {
  const KeySet base = TestKeys(2000);
  const std::int64_t threshold = 16;
  // Retries disabled: the first failure is an immediate give-up, the
  // pre-retry backoff behavior this test has always pinned.
  auto backend = MakeBackend(base, threshold, /*max_retries=*/0);
  FaultSpec always_fail;
  always_fail.probability = 1.0;
  ArmRebuildFault(/*seed=*/17, always_fail);

  // Fill the overlay to the trigger: the inline compaction attempt hits
  // the injected rebuild failure and backs the threshold off to 2x.
  InsertFresh(backend.get(), base, static_cast<int>(threshold),
              /*start=*/1);
  EXPECT_EQ(backend->compactions(), 0);
  EXPECT_EQ(backend->compaction_giveups(), 1);
  EXPECT_EQ(backend->rebuild_retries(), 0);  // max_retries=0: no retry.
  EXPECT_EQ(backend->shard_threshold(0), 2 * threshold);
  EXPECT_EQ(backend->overlay_size(), threshold);

  // Heal the substrate build and grow the overlay to the backed-off
  // trigger: the compaction succeeds and must restore the *configured*
  // threshold, not keep the doubled one (the pre-fix regression).
  FaultRegistry::Global().DisarmAll();
  InsertFresh(backend.get(), base, static_cast<int>(threshold),
              /*start=*/1000000);
  EXPECT_EQ(backend->compactions(), 1);
  EXPECT_EQ(backend->overlay_size(), 0);
  EXPECT_EQ(backend->shard_threshold(0), threshold);
}

TEST(CompactionRecoveryTest, RepeatedFailuresCapThresholdAtEightTimes) {
  const KeySet base = TestKeys(2000);
  const std::int64_t threshold = 8;
  auto backend = MakeBackend(base, threshold, /*max_retries=*/0);
  FaultSpec always_fail;
  always_fail.probability = 1.0;
  ArmRebuildFault(/*seed=*/18, always_fail);

  // Enough inserts to walk the backoff ladder past the cap:
  // 8 -> 16 -> 32 -> 64 (= 8x), then give-ups keep firing at 64 without
  // doubling further.
  InsertFresh(backend.get(), base, 80, /*start=*/1);
  FaultRegistry::Global().DisarmAll();
  EXPECT_GE(backend->compaction_giveups(), 4);
  EXPECT_EQ(backend->compactions(), 0);
  EXPECT_EQ(backend->shard_threshold(0), 8 * threshold);
}

TEST(CompactionRecoveryTest, BoundedRetriesAbsorbTransientFailures) {
  const KeySet base = TestKeys(2000);
  const std::int64_t threshold = 16;
  // Retry budget of 3; the fault fires on exactly the first two rebuild
  // evaluations, then clears — a transient the retry loop must absorb
  // within the *same* maintenance pass.
  auto backend = MakeBackend(base, threshold, /*max_retries=*/3);
  FaultSpec transient;
  transient.fire_on_hits = {1, 2};
  ArmRebuildFault(/*seed=*/19, transient);

  InsertFresh(backend.get(), base, static_cast<int>(threshold),
              /*start=*/1);
  FaultRegistry::Global().DisarmAll();

  // The compaction completed despite the failures, and the threshold
  // was NEVER doubled: under the old bare threshold-doubling code the
  // first failure gave up immediately (compactions()==0, threshold 2x,
  // overlay still full) and this block fails.
  EXPECT_EQ(backend->compactions(), 1);
  EXPECT_EQ(backend->overlay_size(), 0);
  EXPECT_EQ(backend->shard_threshold(0), threshold);
  EXPECT_EQ(backend->rebuild_retries(), 2);
  EXPECT_EQ(backend->compaction_giveups(), 0);
  EXPECT_EQ(static_cast<int>(backend->shard_backoff_history_ns(0).size()), 2);
}

TEST(CompactionRecoveryTest, RetryExhaustionFallsBackToGiveUp) {
  const KeySet base = TestKeys(2000);
  const std::int64_t threshold = 16;
  auto backend = MakeBackend(base, threshold, /*max_retries=*/2);
  FaultSpec always_fail;
  always_fail.probability = 1.0;
  ArmRebuildFault(/*seed=*/20, always_fail);

  // One trigger, three failed attempts (initial + 2 retries), then the
  // give-up path: threshold doubles exactly once for the whole pass.
  InsertFresh(backend.get(), base, static_cast<int>(threshold),
              /*start=*/1);
  FaultRegistry::Global().DisarmAll();
  EXPECT_EQ(backend->compactions(), 0);
  EXPECT_EQ(backend->rebuild_retries(), 2);
  EXPECT_EQ(backend->compaction_giveups(), 1);
  EXPECT_EQ(backend->shard_threshold(0), 2 * threshold);

  // Restore-on-success still holds after an exhausted retry budget.
  InsertFresh(backend.get(), base, static_cast<int>(threshold),
              /*start=*/1000000);
  EXPECT_EQ(backend->compactions(), 1);
  EXPECT_EQ(backend->shard_threshold(0), threshold);
}

TEST(CompactionRecoveryTest, BackoffJitterIsDeterministicUnderFixedSeed) {
  const KeySet base = TestKeys(2000);
  const std::int64_t threshold = 16;
  FaultSpec three_failures;
  three_failures.fire_on_hits = {1, 2, 3};

  // Two identically configured backends, each driven through the same
  // three-failure schedule under the same plan seed: the per-shard
  // backoff Rng (forked from backoff_seed) must replay the exact jitter
  // sequence — the chaos harness's reproducibility contract.
  std::vector<std::int64_t> histories[2];
  for (int run = 0; run < 2; ++run) {
    auto backend = MakeBackend(base, threshold, /*max_retries=*/3);
    ArmRebuildFault(/*seed=*/21, three_failures);
    InsertFresh(backend.get(), base, static_cast<int>(threshold),
                /*start=*/1);
    FaultRegistry::Global().DisarmAll();
    EXPECT_EQ(backend->compactions(), 1);
    EXPECT_EQ(backend->rebuild_retries(), 3);
    histories[run] = backend->shard_backoff_history_ns(0);
  }
  ASSERT_EQ(histories[0].size(), 3u);
  EXPECT_EQ(histories[0], histories[1]);

  // Jittered-exponential envelope: retry k waits within
  // [e/2, e] for e = min(base << k, max) — with base=50us:
  // [25,50], [50,100], [100,200] microseconds.
  const std::int64_t expected_us[3] = {50, 100, 200};
  for (int k = 0; k < 3; ++k) {
    EXPECT_GE(histories[0][k], expected_us[k] * 1000 / 2) << "retry " << k;
    EXPECT_LE(histories[0][k], expected_us[k] * 1000) << "retry " << k;
  }
}

TEST(CompactionRecoveryTest, KickDegradedShardsDrainsAnIdleDegradedShard) {
  const KeySet base = TestKeys(2000);
  const std::int64_t threshold = 16;
  BackendOptions opts;
  opts.rmi.target_model_size = 200;
  opts.num_shards = 1;
  opts.compact_threshold = threshold;
  opts.overlay_hard_cap = threshold + 8;
  opts.sync_compaction = true;
  opts.compaction_max_retries = 0;
  opts.compaction_backoff_base_us = 50;
  opts.compaction_backoff_max_us = 400;
  auto backend_or = CreateBackend(BackendKind::kRmi, base, opts);
  ASSERT_TRUE(backend_or.ok()) << backend_or.status().message();
  auto backend = std::move(*backend_or);

  // Collapse maintenance entirely, fill the overlay to the hard cap,
  // and shed once: the shard is now degraded with its give-up having
  // cleared the in-flight flag — the state where no further traffic
  // would ever un-degrade it on its own.
  FaultSpec always_fail;
  always_fail.probability = 1.0;
  ArmRebuildFault(/*seed=*/29, always_fail);
  InsertFresh(backend.get(), base,
              static_cast<int>(opts.overlay_hard_cap), /*start=*/1);
  EXPECT_EQ(backend->Insert(90'000'000).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(backend->degraded_shards(), 1);
  EXPECT_TRUE(backend->shard_degraded(0));
  EXPECT_GE(backend->compaction_giveups(), 1);

  // The drain primitive: disarm, kick, done. One shard kicked, one
  // compaction, degraded mode exited, configured threshold restored;
  // a second kick finds nothing to do.
  FaultRegistry::Global().DisarmAll();
  EXPECT_EQ(backend->KickDegradedShards(), 1);
  backend->WaitForMaintenance();
  EXPECT_EQ(backend->degraded_shards(), 0);
  EXPECT_FALSE(backend->shard_degraded(0));
  EXPECT_EQ(backend->shard_threshold(0), threshold);
  EXPECT_EQ(backend->overlay_size(), 0);
  EXPECT_EQ(backend->KickDegradedShards(), 0);

  // And the shard admits brand-new inserts again.
  EXPECT_TRUE(backend->Insert(90'000'001).ok());
}

TEST(CompactionRecoveryTest, RemoveTombstonesScanAndResurrection) {
  const KeySet base = TestKeys(1000);
  auto backend = MakeBackend(base, /*compact_threshold=*/0);
  const Key victim = base.keys()[base.keys().size() / 2];

  ASSERT_TRUE(backend->Lookup(victim).found);
  const auto full = backend->Scan(base.keys().front(), base.keys().back());

  // Remove a base key: tombstoned, invisible to point and range reads.
  ASSERT_TRUE(backend->Remove(victim).ok());
  EXPECT_FALSE(backend->Lookup(victim).found);
  EXPECT_EQ(backend->tombstone_size(), 1);
  const auto scan = backend->Scan(base.keys().front(), base.keys().back());
  EXPECT_EQ(scan.range_count, full.range_count - 1);

  // Double-remove is NotFound; removing an absent key is NotFound.
  EXPECT_EQ(backend->Remove(victim).code(), StatusCode::kNotFound);
  EXPECT_EQ(backend->Remove(base.keys().back() + 12345).code(),
            StatusCode::kNotFound);

  // Insert of a tombstoned key resurrects it instead of duplicating.
  ASSERT_TRUE(backend->Insert(victim).ok());
  EXPECT_TRUE(backend->Lookup(victim).found);
  EXPECT_EQ(backend->tombstone_size(), 0);
  EXPECT_EQ(backend->Scan(base.keys().front(), base.keys().back()).range_count,
            full.range_count);

  // Overlay keys round-trip through Remove without tombstones: the key
  // never reached the substrate, so deletion is a plain overlay erase.
  const Key fresh = base.keys().back() + 777;
  ASSERT_TRUE(backend->Insert(fresh).ok());
  ASSERT_TRUE(backend->Remove(fresh).ok());
  EXPECT_FALSE(backend->Lookup(fresh).found);
  EXPECT_EQ(backend->tombstone_size(), 0);
  EXPECT_EQ(backend->removes(), 2);
}

TEST(CompactionRecoveryTest, CompactionFoldsTombstonesAway) {
  const KeySet base = TestKeys(1000);
  const std::int64_t threshold = 32;
  auto backend = MakeBackend(base, threshold);

  // Remove enough base keys that removals alone cross the pending
  // trigger (overlay + tombstones): the retrain must drop them from the
  // new substrate for good.
  std::vector<Key> removed;
  for (std::size_t i = 0;
       i < base.keys().size() &&
       removed.size() < static_cast<std::size_t>(threshold);
       i += 7) {
    const Key k = base.keys()[i];
    ASSERT_TRUE(backend->Remove(k).ok());
    removed.push_back(k);
  }
  EXPECT_EQ(backend->compactions(), 1);
  EXPECT_EQ(backend->tombstone_size(), 0);
  EXPECT_EQ(backend->overlay_size(), 0);
  for (const Key k : removed) EXPECT_FALSE(backend->Lookup(k).found);
  EXPECT_EQ(backend->base_size(),
            static_cast<std::int64_t>(base.keys().size() - removed.size()));
}

TEST(CompactionRecoveryTest, ChurnWithFailuresMatchesMembershipOracle) {
  const KeySet base = TestKeys(1500, /*seed=*/23);
  const std::int64_t threshold = 24;
  // A third of rebuild evaluations fail under a seeded coin, with a
  // small retry budget: the run interleaves successful compactions,
  // retries, give-ups, and restores while the oracle watches.
  auto backend = MakeBackend(base, threshold, /*max_retries=*/2);
  FaultSpec coin;
  coin.probability = 1.0 / 3.0;
  ArmRebuildFault(/*seed=*/23, coin);

  std::set<Key> oracle(base.keys().begin(), base.keys().end());
  Rng rng(99);
  Key next_fresh = 1;
  for (int op = 0; op < 600; ++op) {
    if (rng.NextDouble() < 0.55) {
      Key k = next_fresh++;
      while (oracle.count(k)) k = next_fresh++;
      ASSERT_TRUE(backend->Insert(k).ok());
      oracle.insert(k);
    } else {
      // Remove a present key (bias toward base keys so tombstones form).
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(base.keys().size()) - 1));
      const Key k = base.keys()[idx];
      const Status st = backend->Remove(k);
      if (oracle.count(k)) {
        ASSERT_TRUE(st.ok());
        oracle.erase(k);
      } else {
        EXPECT_EQ(st.code(), StatusCode::kNotFound);
      }
    }
    if (op % 97 == 0) {
      // Spot-check membership both ways.
      const Key probe = base.keys()[(op * 13) % base.keys().size()];
      EXPECT_EQ(backend->Lookup(probe).found, oracle.count(probe) == 1);
    }
  }
  FaultRegistry::Global().DisarmAll();
  EXPECT_GE(backend->compactions(), 1);
  EXPECT_LE(backend->shard_threshold(0), 8 * threshold);

  // Full sweep: every oracle key found, every removed base key gone.
  for (const Key k : oracle) EXPECT_TRUE(backend->Lookup(k).found);
  for (const Key k : base.keys()) {
    if (!oracle.count(k)) EXPECT_FALSE(backend->Lookup(k).found);
  }
  const auto scan = backend->Scan(0, next_fresh + 200 * 1500);
  EXPECT_EQ(scan.range_count, static_cast<std::int64_t>(oracle.size()));
}

}  // namespace
}  // namespace lispoison
