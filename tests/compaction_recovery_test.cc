// Compaction-recovery coverage: the threshold backoff/restore state
// machine under injected rebuild failures, and the remove/tombstone
// membership semantics the adversary's delete stream rides on.
//
// The headline regression: a failed substrate rebuild doubles the
// shard's compaction threshold (backoff so the maintenance thread does
// not spin on a failing rebuild), and the next *successful* compaction
// must restore the configured threshold. Before the fix the doubled
// value stuck forever — every transient failure permanently degraded
// the shard into overlay binary search. The backoff is also capped at
// 8x the configured threshold so repeated failures cannot push the
// trigger out of reach.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"
#include "workload/search_backend.h"

namespace lispoison {
namespace {

KeySet TestKeys(std::int64_t n, std::uint64_t seed = 17) {
  Rng rng(seed);
  auto ks = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  EXPECT_TRUE(ks.ok());
  return *ks;
}

std::unique_ptr<SearchBackend> MakeBackend(
    const KeySet& ks, std::int64_t compact_threshold,
    std::function<bool(int)> injector = nullptr,
    bool sync_compaction = true) {
  BackendOptions opts;
  opts.rmi.target_model_size = 200;
  opts.num_shards = 1;  // One shard: deterministic trigger accounting.
  opts.compact_threshold = compact_threshold;
  opts.sync_compaction = sync_compaction;
  opts.rebuild_fault_injector = std::move(injector);
  auto backend = CreateBackend(BackendKind::kRmi, ks, opts);
  EXPECT_TRUE(backend.ok()) << backend.status().message();
  return std::move(*backend);
}

/// Inserts `count` fresh keys (not in the base keyset) one by one.
void InsertFresh(SearchBackend* backend, const KeySet& base, int count,
                 Key start) {
  std::set<Key> taken(base.keys().begin(), base.keys().end());
  Key k = start;
  for (int i = 0; i < count; ++i) {
    while (taken.count(k)) ++k;
    ASSERT_TRUE(backend->Insert(k).ok());
    taken.insert(k);
    ++k;
  }
}

TEST(CompactionRecoveryTest, FailedCompactionDoublesThenRestoresThreshold) {
  const KeySet base = TestKeys(2000);
  const std::int64_t threshold = 16;
  std::atomic<bool> fail{true};
  auto backend = MakeBackend(
      base, threshold, [&fail](int) { return fail.load(); });

  // Fill the overlay to the trigger: the inline compaction attempt hits
  // the injected rebuild failure and backs the threshold off to 2x.
  InsertFresh(backend.get(), base, static_cast<int>(threshold),
              /*start=*/1);
  EXPECT_EQ(backend->compactions(), 0);
  EXPECT_EQ(backend->shard_threshold(0), 2 * threshold);
  EXPECT_EQ(backend->overlay_size(), threshold);

  // Heal the substrate build and grow the overlay to the backed-off
  // trigger: the compaction succeeds and must restore the *configured*
  // threshold, not keep the doubled one (the pre-fix regression).
  fail.store(false);
  InsertFresh(backend.get(), base, static_cast<int>(threshold),
              /*start=*/1000000);
  EXPECT_EQ(backend->compactions(), 1);
  EXPECT_EQ(backend->overlay_size(), 0);
  EXPECT_EQ(backend->shard_threshold(0), threshold);
}

TEST(CompactionRecoveryTest, RepeatedFailuresCapThresholdAtEightTimes) {
  const KeySet base = TestKeys(2000);
  const std::int64_t threshold = 8;
  std::atomic<int> attempts{0};
  auto backend = MakeBackend(base, threshold, [&attempts](int) {
    attempts.fetch_add(1);
    return true;  // Every rebuild fails.
  });

  // Enough inserts to walk the backoff ladder past the cap:
  // 8 -> 16 -> 32 -> 64 (= 8x), then attempts keep firing at 64 without
  // doubling further.
  InsertFresh(backend.get(), base, 80, /*start=*/1);
  EXPECT_GE(attempts.load(), 4);
  EXPECT_EQ(backend->compactions(), 0);
  EXPECT_EQ(backend->shard_threshold(0), 8 * threshold);
}

TEST(CompactionRecoveryTest, RemoveTombstonesScanAndResurrection) {
  const KeySet base = TestKeys(1000);
  auto backend = MakeBackend(base, /*compact_threshold=*/0);
  const Key victim = base.keys()[base.keys().size() / 2];

  ASSERT_TRUE(backend->Lookup(victim).found);
  const auto full = backend->Scan(base.keys().front(), base.keys().back());

  // Remove a base key: tombstoned, invisible to point and range reads.
  ASSERT_TRUE(backend->Remove(victim).ok());
  EXPECT_FALSE(backend->Lookup(victim).found);
  EXPECT_EQ(backend->tombstone_size(), 1);
  const auto scan = backend->Scan(base.keys().front(), base.keys().back());
  EXPECT_EQ(scan.range_count, full.range_count - 1);

  // Double-remove is NotFound; removing an absent key is NotFound.
  EXPECT_EQ(backend->Remove(victim).code(), StatusCode::kNotFound);
  EXPECT_EQ(backend->Remove(base.keys().back() + 12345).code(),
            StatusCode::kNotFound);

  // Insert of a tombstoned key resurrects it instead of duplicating.
  ASSERT_TRUE(backend->Insert(victim).ok());
  EXPECT_TRUE(backend->Lookup(victim).found);
  EXPECT_EQ(backend->tombstone_size(), 0);
  EXPECT_EQ(backend->Scan(base.keys().front(), base.keys().back()).range_count,
            full.range_count);

  // Overlay keys round-trip through Remove without tombstones: the key
  // never reached the substrate, so deletion is a plain overlay erase.
  const Key fresh = base.keys().back() + 777;
  ASSERT_TRUE(backend->Insert(fresh).ok());
  ASSERT_TRUE(backend->Remove(fresh).ok());
  EXPECT_FALSE(backend->Lookup(fresh).found);
  EXPECT_EQ(backend->tombstone_size(), 0);
  EXPECT_EQ(backend->removes(), 2);
}

TEST(CompactionRecoveryTest, CompactionFoldsTombstonesAway) {
  const KeySet base = TestKeys(1000);
  const std::int64_t threshold = 32;
  auto backend = MakeBackend(base, threshold);

  // Remove enough base keys that removals alone cross the pending
  // trigger (overlay + tombstones): the retrain must drop them from the
  // new substrate for good.
  std::vector<Key> removed;
  for (std::size_t i = 0;
       i < base.keys().size() &&
       removed.size() < static_cast<std::size_t>(threshold);
       i += 7) {
    const Key k = base.keys()[i];
    ASSERT_TRUE(backend->Remove(k).ok());
    removed.push_back(k);
  }
  EXPECT_EQ(backend->compactions(), 1);
  EXPECT_EQ(backend->tombstone_size(), 0);
  EXPECT_EQ(backend->overlay_size(), 0);
  for (const Key k : removed) EXPECT_FALSE(backend->Lookup(k).found);
  EXPECT_EQ(backend->base_size(),
            static_cast<std::int64_t>(base.keys().size() - removed.size()));
}

TEST(CompactionRecoveryTest, ChurnWithFailuresMatchesMembershipOracle) {
  const KeySet base = TestKeys(1500, /*seed=*/23);
  const std::int64_t threshold = 24;
  // Every third rebuild attempt fails: the run interleaves successful
  // compactions, backoffs, and restores while the oracle watches.
  std::atomic<int> attempts{0};
  auto backend = MakeBackend(base, threshold, [&attempts](int) {
    return attempts.fetch_add(1) % 3 == 2;
  });

  std::set<Key> oracle(base.keys().begin(), base.keys().end());
  Rng rng(99);
  Key next_fresh = 1;
  for (int op = 0; op < 600; ++op) {
    if (rng.NextDouble() < 0.55) {
      Key k = next_fresh++;
      while (oracle.count(k)) k = next_fresh++;
      ASSERT_TRUE(backend->Insert(k).ok());
      oracle.insert(k);
    } else {
      // Remove a present key (bias toward base keys so tombstones form).
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(base.keys().size()) - 1));
      const Key k = base.keys()[idx];
      const Status st = backend->Remove(k);
      if (oracle.count(k)) {
        ASSERT_TRUE(st.ok());
        oracle.erase(k);
      } else {
        EXPECT_EQ(st.code(), StatusCode::kNotFound);
      }
    }
    if (op % 97 == 0) {
      // Spot-check membership both ways.
      const Key probe = base.keys()[(op * 13) % base.keys().size()];
      EXPECT_EQ(backend->Lookup(probe).found, oracle.count(probe) == 1);
    }
  }
  EXPECT_GE(backend->compactions(), 1);
  EXPECT_LE(backend->shard_threshold(0), 8 * threshold);

  // Full sweep: every oracle key found, every removed base key gone.
  for (const Key k : oracle) EXPECT_TRUE(backend->Lookup(k).found);
  for (const Key k : base.keys()) {
    if (!oracle.count(k)) EXPECT_FALSE(backend->Lookup(k).found);
  }
  const auto scan = backend->Scan(0, next_fresh + 200 * 1500);
  EXPECT_EQ(scan.range_count, static_cast<std::int64_t>(oracle.size()));
}

}  // namespace
}  // namespace lispoison
