#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace lispoison {
namespace {

TEST(GenerateUniformTest, SizeAndDomain) {
  Rng rng(1);
  auto ks = GenerateUniform(100, KeyDomain{0, 999}, &rng);
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->size(), 100);
  EXPECT_GE(ks->keys().front(), 0);
  EXPECT_LE(ks->keys().back(), 999);
}

TEST(GenerateUniformTest, DensePathProducesUniqueKeys) {
  Rng rng(2);
  // 80% density forces the complement-sampling path.
  auto ks = GenerateUniform(800, KeyDomain{0, 999}, &rng);
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->size(), 800);
  EXPECT_NEAR(ks->density(), 0.8, 1e-9);
}

TEST(GenerateUniformTest, FullDomain) {
  Rng rng(3);
  auto ks = GenerateUniform(10, KeyDomain{5, 14}, &rng);
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->size(), 10);
  EXPECT_EQ(ks->keys().front(), 5);
  EXPECT_EQ(ks->keys().back(), 14);
}

TEST(GenerateUniformTest, RejectsOverfullRequest) {
  Rng rng(4);
  auto ks = GenerateUniform(11, KeyDomain{0, 9}, &rng);
  EXPECT_EQ(ks.status().code(), StatusCode::kInvalidArgument);
}

TEST(GenerateUniformTest, ZeroKeysIsEmpty) {
  Rng rng(5);
  auto ks = GenerateUniform(0, KeyDomain{0, 9}, &rng);
  ASSERT_TRUE(ks.ok());
  EXPECT_TRUE(ks->empty());
}

TEST(GenerateUniformTest, RoughlyUniformSpread) {
  Rng rng(6);
  auto ks = GenerateUniform(10000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  // Mean of uniform keys should be near the domain midpoint.
  long double sum = 0;
  for (Key k : ks->keys()) sum += k;
  const double mean = static_cast<double>(sum / ks->size());
  EXPECT_NEAR(mean, 50000.0, 1500.0);
}

TEST(GenerateLogNormalTest, SkewsLow) {
  Rng rng(7);
  auto ks = GenerateLogNormal(2000, KeyDomain{0, 999999}, &rng);
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->size(), 2000);
  // Log-normal(0,2) mass concentrates near the low end of the domain:
  // the median key must sit far below the midpoint.
  const Key median = ks->at(ks->size() / 2);
  EXPECT_LT(median, 200000);
}

TEST(GenerateLogNormalTest, ParameterValidation) {
  Rng rng(8);
  EXPECT_FALSE(GenerateLogNormal(10, KeyDomain{0, 99}, &rng, 0.0, -1.0).ok());
  EXPECT_FALSE(
      GenerateLogNormal(10, KeyDomain{0, 99}, &rng, 0.0, 2.0, 1.5).ok());
}

TEST(GenerateNormalTest, CentersOnDomainMidpoint) {
  Rng rng(9);
  auto ks = GenerateNormal(5000, KeyDomain{0, 99999}, &rng);
  ASSERT_TRUE(ks.ok());
  long double sum = 0;
  for (Key k : ks->keys()) sum += k;
  const double mean = static_cast<double>(sum / ks->size());
  EXPECT_NEAR(mean, 50000.0, 3000.0);
}

TEST(GenerateNormalTest, WithinDomain) {
  Rng rng(10);
  auto ks = GenerateNormal(1000, KeyDomain{100, 1099}, &rng);
  ASSERT_TRUE(ks.ok());
  EXPECT_GE(ks->keys().front(), 100);
  EXPECT_LE(ks->keys().back(), 1099);
}

TEST(GenerateClusteredTest, MassFollowsClusters) {
  Rng rng(11);
  const std::vector<ClusterSpec> clusters = {
      {0.2, 0.02, 1.0},
      {0.8, 0.02, 1.0},
  };
  auto ks = GenerateClustered(2000, KeyDomain{0, 99999}, clusters, &rng);
  ASSERT_TRUE(ks.ok());
  // Almost no keys should fall near the middle (0.45..0.55 band).
  std::int64_t mid = 0;
  for (Key k : ks->keys()) {
    if (k > 45000 && k < 55000) ++mid;
  }
  EXPECT_LT(mid, 40);
}

TEST(GenerateClusteredTest, Validation) {
  Rng rng(12);
  EXPECT_FALSE(GenerateClustered(10, KeyDomain{0, 99}, {}, &rng).ok());
  EXPECT_FALSE(GenerateClustered(10, KeyDomain{0, 99},
                                 {{0.5, 0.0, 1.0}}, &rng)
                   .ok());
  EXPECT_FALSE(GenerateClustered(10, KeyDomain{0, 99},
                                 {{0.5, 0.1, 0.0}}, &rng)
                   .ok());
}

TEST(GenerateEvenlySpacedTest, LinearCdf) {
  auto ks = GenerateEvenlySpaced(11, KeyDomain{0, 100});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->size(), 11);
  EXPECT_EQ(ks->keys().front(), 0);
  EXPECT_EQ(ks->keys().back(), 100);
  // Consecutive gaps all equal 10.
  for (std::int64_t i = 1; i < ks->size(); ++i) {
    EXPECT_EQ(ks->at(i) - ks->at(i - 1), 10);
  }
}

TEST(GenerateEvenlySpacedTest, SingleKey) {
  auto ks = GenerateEvenlySpaced(1, KeyDomain{7, 100});
  ASSERT_TRUE(ks.ok());
  EXPECT_EQ(ks->at(0), 7);
}

TEST(GeneratorDeterminismTest, SameSeedSameKeys) {
  Rng a(99), b(99);
  auto ka = GenerateUniform(500, KeyDomain{0, 9999}, &a);
  auto kb = GenerateUniform(500, KeyDomain{0, 9999}, &b);
  ASSERT_TRUE(ka.ok());
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(ka->keys(), kb->keys());
}

}  // namespace
}  // namespace lispoison
