// Copyright (c) lispoison authors. Licensed under the MIT license.
//
// Compile-time kill-switch coverage: this binary is built with
// -DLISPOISON_TELEMETRY_DISABLED applied to BOTH this file and its own
// copy of src/common/telemetry.cc (see the dedicated CMake target — it
// cannot link the main library, whose telemetry objects are compiled
// enabled). Every hot-path call must be a no-op: no counts, no slots,
// no trace events. The registry/session query surface stays callable so
// instrumented code needs no #ifdefs at call sites.

#ifndef LISPOISON_TELEMETRY_DISABLED
#error "telemetry_disabled_test must be compiled with LISPOISON_TELEMETRY_DISABLED"
#endif

#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>

namespace lispoison {
namespace {

TEST(TelemetryDisabledTest, InstrumentsRecordNothing) {
  TelemetryRegistry& registry = TelemetryRegistry::Global();
  TelemetryCounter* counter = registry.GetCounter("disabled.counter");
  TelemetryGauge* gauge = registry.GetGauge("disabled.gauge");
  TelemetryHistogram* hist = registry.GetHistogram("disabled.hist");

  counter->Add(100);
  gauge->Add(7);
  gauge->Add(-3);
  hist->Record(12345);
  std::thread t([counter, hist] {
    counter->Add(55);
    hist->Record(99);
  });
  t.join();

  EXPECT_EQ(counter->Value(), 0);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(hist->Count(), 0);
  // No Record ever ran, so no thread ever claimed a slot.
  EXPECT_EQ(registry.slots_created(), 0);
}

TEST(TelemetryDisabledTest, SnapshotAndSamplerStayCallable) {
  TelemetryRegistry& registry = TelemetryRegistry::Global();
  registry.GetCounter("disabled.counter")->Add(1);

  TelemetrySampler sampler;
  sampler.Start();
  registry.GetCounter("disabled.counter")->Add(1);
  sampler.SampleNow();
  sampler.Stop();

  for (const auto& row : sampler.Rows()) {
    for (const auto& c : row.counter_deltas) {
      EXPECT_EQ(c.value, 0) << c.name << " moved in a disabled build";
    }
  }
  const MetricsSnapshot totals = sampler.TotalsSinceStart();
  for (const auto& c : totals.counters) EXPECT_EQ(c.value, 0) << c.name;
  for (const auto& h : totals.histograms) EXPECT_EQ(h.count, 0) << h.name;
}

TEST(TelemetryDisabledTest, SpansCompileToNothing) {
  TraceSession& session = TraceSession::Global();
  session.Start(/*events_per_thread=*/64);
  for (int i = 0; i < 100; ++i) {
    TraceSpan span(TraceCategory::kBench, "disabled_span", i);
    TraceInstant(TraceCategory::kBench, "disabled_tick", i);
  }
  session.Stop();
  EXPECT_EQ(session.recorded(), 0);
  EXPECT_EQ(session.dropped(), 0);

  std::ostringstream out;
  session.WriteJson(&out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos)
      << "exporter must still emit a valid (empty) document";
  EXPECT_EQ(json.find("disabled_span"), std::string::npos);
}

}  // namespace
}  // namespace lispoison
