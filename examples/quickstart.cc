// Quickstart: build a learned index, query it, and see what a poisoning
// adversary can do to it — the 60-second tour of the library.
//
//   $ ./quickstart [--keys=10000] [--seed=1]

#include <cstdio>

#include "attack/rmi_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/generators.h"
#include "index/learned_index.h"

using namespace lispoison;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 10000);
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 1)));

  // 1. Make a dataset: n unique keys, uniform over a sparse domain.
  auto keyset = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  if (!keyset.ok()) {
    std::fprintf(stderr, "%s\n", keyset.status().ToString().c_str());
    return 1;
  }

  // 2. Build a learned index (two-stage RMI, 100 keys per leaf model).
  RmiOptions options;
  options.target_model_size = 100;
  auto index = LearnedIndex::Build(*keyset, options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }

  // 3. Query it.
  const Key probe = keyset->at(n / 2);
  const LookupResult hit = index->Lookup(probe);
  std::printf("lookup(%lld): found=%d position=%lld probes=%lld\n",
              static_cast<long long>(probe), hit.found,
              static_cast<long long>(hit.position),
              static_cast<long long>(hit.probes));

  const LookupStats clean_stats = index->ProfileAllKeys();
  std::printf("clean index: mean last-mile probes %.2f, mean |pred err| "
              "%.2f slots, RMI loss %.3f\n",
              clean_stats.MeanProbes(), clean_stats.MeanAbsError(),
              static_cast<double>(index->rmi().RmiLoss()));

  // 4. Attack it: 10% poisoning keys crafted before training.
  RmiAttackOptions attack_options;
  attack_options.poison_fraction = 0.10;
  attack_options.model_size = 100;
  auto attack = PoisonRmi(*keyset, attack_options);
  if (!attack.ok()) {
    std::fprintf(stderr, "%s\n", attack.status().ToString().c_str());
    return 1;
  }

  // 5. The victim trains on the poisoned data...
  auto poisoned = keyset->Union(attack->AllPoisonKeys());
  RmiOptions poisoned_options;
  poisoned_options.target_model_size = 110;  // Same N models over n+p keys.
  auto poisoned_index = LearnedIndex::Build(*poisoned, poisoned_options);
  const LookupStats poisoned_stats = poisoned_index->ProfileAllKeys();

  std::printf("\nafter 10%% poisoning (ratio loss %.1fx):\n",
              attack->rmi_ratio_loss);
  std::printf("poisoned index: mean last-mile probes %.2f (was %.2f), "
              "mean |pred err| %.2f slots (was %.2f)\n",
              poisoned_stats.MeanProbes(), clean_stats.MeanProbes(),
              poisoned_stats.MeanAbsError(), clean_stats.MeanAbsError());
  std::printf("every key is still found -- it just costs more:\n");
  const LookupResult hit2 = poisoned_index->Lookup(probe);
  std::printf("lookup(%lld): found=%d probes=%lld\n",
              static_cast<long long>(probe), hit2.found,
              static_cast<long long>(hit2.probes));
  return 0;
}
