// Domain-scenario example: a defender's-eye evaluation. Given a keyset
// that may have been poisoned, run the mitigation toolbox (range / IQR /
// density filters, TRIM-for-CDF) and report what each would have caught
// and what it would have cost — reproducing the Section VI discussion.
//
//   $ ./defense_evaluation [--keys=1000] [--pct=15] [--seed=5]

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "attack/greedy_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "data/generators.h"
#include "defense/filters.h"
#include "defense/trim.h"
#include "index/cdf_regression.h"

using namespace lispoison;

namespace {

long double LossOf(std::vector<Key> keys) {
  std::sort(keys.begin(), keys.end());
  if (keys.empty()) return 0;
  MomentAccumulator acc;
  Rank r = 1;
  const Key shift = keys.front();
  for (Key k : keys) acc.Add(k - shift, r++);
  return FitFromMoments(acc).mse;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 1000);
  const double pct = flags.GetDouble("pct", 15);
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 5)));
  const std::int64_t p =
      static_cast<std::int64_t>(static_cast<double>(n) * pct / 100.0);

  auto keyset = GenerateUniform(n, KeyDomain{0, 20 * n}, &rng);
  if (!keyset.ok()) {
    std::fprintf(stderr, "%s\n", keyset.status().ToString().c_str());
    return 1;
  }
  auto attack = GreedyPoisonCdf(*keyset, p);
  if (!attack.ok()) {
    std::fprintf(stderr, "%s\n", attack.status().ToString().c_str());
    return 1;
  }
  auto poisoned = ApplyPoison(*keyset, attack->poison_keys);
  const long double clean_loss = LossOf(keyset->keys());

  std::printf("=== Defense evaluation ===\n");
  std::printf("n=%lld legitimate keys + %lld poisons (ratio loss %.1fx)\n\n",
              static_cast<long long>(n), static_cast<long long>(p),
              attack->RatioLoss());

  TextTable table;
  table.SetHeader({"defense", "removed", "poison caught", "legit lost",
                   "precision", "recall", "post ratio"});
  auto report = [&](const char* name, const std::vector<Key>& removed,
                    const std::vector<Key>& kept) {
    const DefenseQuality q = ScoreDefense(removed, attack->poison_keys);
    table.AddRow({name,
                  TextTable::Fmt(static_cast<std::int64_t>(removed.size())),
                  TextTable::Fmt(q.true_positives),
                  TextTable::Fmt(q.false_positives),
                  TextTable::Fmt(q.precision, 3),
                  TextTable::Fmt(q.recall, 3),
                  TextTable::Fmt(SafeRatioLoss(LossOf(kept), clean_loss),
                                 4)});
  };

  {
    std::vector<Key> keys = poisoned->keys();
    auto removed = RangeFilter(&keys, keyset->keys().front(),
                               keyset->keys().back());
    report("range-filter", removed, keys);
  }
  {
    std::vector<Key> keys = poisoned->keys();
    auto removed = IqrOutlierFilter(&keys, 1.5);
    report("iqr-outlier", removed, keys);
  }
  {
    std::vector<Key> keys = poisoned->keys();
    auto removed = DensitySpikeFilter(&keys, poisoned->domain(), 64, 2.5);
    report("density-spike", removed, keys);
  }
  {
    TrimOptions opts;
    opts.assumed_poison_fraction =
        static_cast<double>(p) / static_cast<double>(n + p);
    auto trim = TrimDefense(*poisoned, opts);
    if (trim.ok()) {
      report("trim-cdf", trim->removed_keys, trim->kept_keys);
      std::printf("TRIM converged=%d after %lld iterations\n",
                  trim->converged,
                  static_cast<long long>(trim->iterations));
    }
  }
  table.Print(std::cout);
  std::printf(
      "\n'post ratio' is the retrained MSE over the clean MSE: 1.0 means\n"
      "full recovery, %.1f means no defense at all. The attack stays in\n"
      "range and inside dense regions, so simple filters are blind and\n"
      "TRIM trades poison removal for legitimate-key collateral.\n",
      attack->RatioLoss());
  return 0;
}
