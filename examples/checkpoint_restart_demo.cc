// Checkpoint/restart smoke driver for the greedy insertion attack.
//
// The CI kill-and-resume gate runs this binary three times against the
// same checkpoint file:
//
//   $ ./checkpoint_restart_demo --ckpt=/tmp/g.ckpt --halt-after=40   # "crash"
//   $ ./checkpoint_restart_demo --ckpt=/tmp/g.ckpt                   # resume
//   $ ./checkpoint_restart_demo --expect=<digest printed above> ...  # verify
//
// Exit codes: 0 success, 1 error, 2 digest mismatch, 3 deliberate halt
// (the simulated crash — distinct so CI can assert the halt happened).
//
// On completion the demo prints `poison_digest=<fnv1a64 of the poison
// key sequence>`; a resumed run must print the digest of an
// uninterrupted run bit-for-bit (tests/snapshot_checkpoint_test.cc pins
// the same property in-process).

#include <cinttypes>
#include <cstdio>
#include <string>

#include "attack/greedy_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "data/generators.h"

using namespace lispoison;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 20000);
  const std::int64_t p = flags.GetInt("poison", 200);
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 7)));

  GreedyCheckpointOptions ckpt;
  ckpt.path = flags.GetString("ckpt", "");
  ckpt.every = flags.GetInt("every", 64);
  ckpt.halt_after = flags.GetInt("halt-after", -1);
  if (ckpt.path.empty()) {
    std::fprintf(stderr, "--ckpt=<path> is required\n");
    return 1;
  }

  auto keyset = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  if (!keyset.ok()) {
    std::fprintf(stderr, "%s\n", keyset.status().ToString().c_str());
    return 1;
  }

  auto result = GreedyPoisonCdfCheckpointed(*keyset, p, {}, ckpt);
  if (!result.ok()) {
    if (ckpt.halt_after >= 0 &&
        result.status().code() == StatusCode::kFailedPrecondition) {
      std::printf("halted after %" PRId64 " insertions; checkpoint at %s\n",
                  ckpt.halt_after, ckpt.path.c_str());
      return 3;
    }
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  const std::uint64_t digest =
      Fnv1a64(result->poison_keys.data(),
              result->poison_keys.size() * sizeof(Key));
  std::printf("rounds=%zu ratio_loss=%.4f poison_digest=%016" PRIx64 "\n",
              result->poison_keys.size(), result->RatioLoss(), digest);

  const std::string expect = flags.GetString("expect", "");
  if (!expect.empty()) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, digest);
    if (expect != buf) {
      std::fprintf(stderr,
                   "digest mismatch: resumed run produced %s, expected %s\n",
                   buf, expect.c_str());
      return 2;
    }
    std::printf("resume digest matches the uninterrupted run\n");
  }
  return 0;
}
