// Serving study: a narrative walk through the workload subsystem.
// Builds a clean index, poisons it with Algorithm 2, then serves a
// zipfian read-heavy stream against both variants on all three backends
// and prints what the attack costs in tail latency and per-lookup work.
//
// Flags: --keys=50000 --ops=50000 --threads=2 --poison-pct=10 --seed=7

#include <cstdio>
#include <iostream>

#include "attack/rmi_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "data/generators.h"
#include "workload/query_driver.h"
#include "workload/search_backend.h"
#include "workload/workload.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 50000);
  const std::int64_t ops = flags.GetInt("ops", 50000);
  const int threads = static_cast<int>(flags.GetInt("threads", 2));
  const double poison_pct = flags.GetDouble("poison-pct", 10.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 7));

  Rng rng(seed);
  auto clean_or = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  if (!clean_or.ok()) {
    std::fprintf(stderr, "%s\n", clean_or.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Serving study: the price of a poisoned RMI ===\n\n");
  std::printf("1. Train-time attack: inject %.0f%% poisoning keys "
              "(Algorithm 2)...\n", poison_pct);
  RmiAttackOptions attack_opts;
  attack_opts.poison_fraction = poison_pct / 100.0;
  attack_opts.model_size = 500;
  attack_opts.num_threads = threads;
  auto attack_or = PoisonRmi(*clean_or, attack_opts);
  if (!attack_or.ok()) {
    std::fprintf(stderr, "%s\n", attack_or.status().ToString().c_str());
    return 1;
  }
  auto poisoned_or = clean_or->Union(attack_or->AllPoisonKeys());
  if (!poisoned_or.ok()) {
    std::fprintf(stderr, "%s\n", poisoned_or.status().ToString().c_str());
    return 1;
  }
  std::printf("   attacker's RMI ratio loss: %.2fx\n\n",
              attack_or->rmi_ratio_loss);

  std::printf("2. Serve a zipfian read-heavy stream (%lld ops, %d "
              "threads) on each variant...\n\n",
              static_cast<long long>(ops), threads);
  const WorkloadSpec spec = ZipfianReadHeavyWorkload(seed);

  TextTable table;
  table.SetHeader({"backend", "variant", "ops/s", "p50 ns", "p99 ns",
                   "mean work", "max work"});
  double clean_rmi_work = 0, poisoned_rmi_work = 0;
  for (const BackendKind kind :
       {BackendKind::kRmi, BackendKind::kBTree, BackendKind::kBinarySearch}) {
    for (const auto& variant :
         {std::make_pair("clean", &*clean_or),
          std::make_pair("poisoned", &*poisoned_or)}) {
      auto ops_or = GenerateOperations(spec, *variant.second, ops);
      if (!ops_or.ok()) {
        std::fprintf(stderr, "%s\n", ops_or.status().ToString().c_str());
        return 1;
      }
      BackendOptions backend_opts;
      backend_opts.rmi.target_model_size = 500;
      auto backend_or = CreateBackend(kind, *variant.second, backend_opts);
      if (!backend_or.ok()) {
        std::fprintf(stderr, "%s\n", backend_or.status().ToString().c_str());
        return 1;
      }
      DriverOptions driver_opts;
      driver_opts.num_threads = threads;
      auto result_or = RunWorkload(backend_or->get(), *ops_or, driver_opts);
      if (!result_or.ok()) {
        std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
        return 1;
      }
      if (kind == BackendKind::kRmi) {
        if (std::string(variant.first) == "clean") {
          clean_rmi_work = result_or->MeanWork();
        } else {
          poisoned_rmi_work = result_or->MeanWork();
        }
      }
      table.AddRow({(*backend_or)->name(), variant.first,
                    TextTable::Fmt(static_cast<std::int64_t>(
                        result_or->ThroughputOpsPerSec())),
                    TextTable::Fmt(result_or->latency.P50()),
                    TextTable::Fmt(result_or->latency.P99()),
                    TextTable::Fmt(result_or->MeanWork(), 2),
                    TextTable::Fmt(result_or->max_work)});
    }
  }
  table.Print(std::cout);

  std::printf("\n3. The damage in serving currency: the poisoned RMI does "
              "%.2fx the per-lookup work of the clean one, while the "
              "B+Tree and binary-search controls are unmoved — exactly "
              "the asymmetry the paper predicts from the loss blow-up.\n",
              clean_rmi_work > 0 ? poisoned_rmi_work / clean_rmi_work : 0.0);
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
