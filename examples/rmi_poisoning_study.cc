// Domain-scenario example: an end-to-end poisoning study against a
// salary-keyed RMI — the paper's Miami-Dade motivating scenario, where
// index keys are contributed by many parties (employees' salary records)
// and an adversary controls a small slice of the contributions.
//
//   $ ./rmi_poisoning_study [--n=5300] [--model-size=100] [--pct=10]

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "attack/rmi_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "data/surrogates.h"
#include "index/btree.h"
#include "index/learned_index.h"

using namespace lispoison;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("n", 5300);
  const std::int64_t model_size = flags.GetInt("model-size", 100);
  const double pct = flags.GetDouble("pct", 10);
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));

  std::printf("=== RMI poisoning study: salary-keyed index ===\n\n");
  auto salaries = MakeMiamiSalariesSurrogate(&rng, n == 5300 ? 0 : n);
  if (!salaries.ok()) {
    std::fprintf(stderr, "%s\n", salaries.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %lld unique salaries in [$%lld, $%lld] "
              "(density %.2f%%)\n",
              static_cast<long long>(salaries->size()),
              static_cast<long long>(salaries->keys().front()),
              static_cast<long long>(salaries->keys().back()),
              100.0 * salaries->density());

  // Clean index.
  RmiOptions idx_opts;
  idx_opts.target_model_size = model_size;
  auto clean_idx = LearnedIndex::Build(*salaries, idx_opts);
  const LookupStats clean_stats = clean_idx->ProfileAllKeys();
  std::printf("clean RMI (%lld leaf models): RMI loss %.3f, mean probes "
              "%.2f\n\n",
              static_cast<long long>(clean_idx->rmi().num_models()),
              static_cast<double>(clean_idx->rmi().RmiLoss()),
              clean_stats.MeanProbes());

  // Attack.
  RmiAttackOptions attack_opts;
  attack_opts.poison_fraction = pct / 100.0;
  attack_opts.model_size = model_size;
  attack_opts.alpha = 3.0;
  attack_opts.num_threads = 0;  // One worker per hardware thread.
  auto attack = PoisonRmi(*salaries, attack_opts);
  if (!attack.ok()) {
    std::fprintf(stderr, "%s\n", attack.status().ToString().c_str());
    return 1;
  }
  std::printf("attack: %lld poisoning salaries (%.0f%% of n), alpha=3, "
              "%lld volume-exchanges applied\n",
              static_cast<long long>(attack->total_poison_keys), pct,
              static_cast<long long>(attack->exchanges_applied));
  std::printf("RMI ratio loss: %.2fx (attacker bookkeeping), %.2fx "
              "(victim retrained)\n\n",
              attack->rmi_ratio_loss, attack->retrained_rmi_ratio);

  // Which second-stage models suffered most?
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t i = 0; i < attack->per_model_ratio.size(); ++i) {
    ranked.emplace_back(attack->per_model_ratio[i], i);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  TextTable table;
  table.SetHeader({"model#", "clean MSE", "poisoned MSE", "ratio",
                   "poisons"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, ranked.size()); ++i) {
    const std::size_t m = ranked[i].second;
    table.AddRow(
        {TextTable::Fmt(static_cast<std::int64_t>(m)),
         TextTable::Fmt(static_cast<double>(attack->clean_losses[m]), 4),
         TextTable::Fmt(static_cast<double>(attack->poisoned_losses[m]), 4),
         TextTable::Fmt(attack->per_model_ratio[m], 4),
         TextTable::Fmt(
             static_cast<std::int64_t>(attack->per_model_poison[m].size()))});
  }
  std::printf("hardest-hit second-stage models:\n");
  table.Print(std::cout);

  // Victim-side impact on real lookups.
  auto poisoned = salaries->Union(attack->AllPoisonKeys());
  RmiOptions pois_opts;
  pois_opts.num_models = clean_idx->rmi().num_models();
  auto poisoned_idx = LearnedIndex::Build(*poisoned, pois_opts);
  const LookupStats poisoned_stats = poisoned_idx->ProfileAllKeys();
  std::printf("\nlookup cost: mean probes %.2f -> %.2f, max |pred err| "
              "%lld -> %lld slots\n",
              clean_stats.MeanProbes(), poisoned_stats.MeanProbes(),
              static_cast<long long>(clean_stats.max_abs_error),
              static_cast<long long>(poisoned_stats.max_abs_error));

  // The traditional baseline is oblivious.
  auto tree_clean = BPlusTree::Build(*salaries, 64);
  auto tree_poisoned = BPlusTree::Build(*poisoned, 64);
  std::printf("B+Tree control: height %d -> %d (a B+Tree absorbs the same "
              "insertions without degradation)\n",
              tree_clean->height(), tree_poisoned->height());
  return 0;
}
