// lispoison_cli: a small command-line tool driving the library on key
// files, so the pipeline can be scripted without writing C++:
//
//   lispoison_cli generate --dist=uniform --keys=1000 --domain=100000 \
//                 --out=/tmp/keys.txt
//   lispoison_cli inspect  --in=/tmp/keys.txt
//   lispoison_cli attack   --in=/tmp/keys.txt --pct=10 \
//                 --out=/tmp/poisoned.txt [--rmi --model-size=100]
//   lispoison_cli evaluate --clean=/tmp/keys.txt --poisoned=/tmp/poisoned.txt
//   lispoison_cli defend   --in=/tmp/poisoned.txt --assumed-pct=9 \
//                 --out=/tmp/sanitized.txt
//
// Each subcommand prints a short report to stdout and returns non-zero
// on failure.

#include <cstdio>
#include <iostream>
#include <string>

#include "attack/greedy_poisoner.h"
#include "attack/rmi_poisoner.h"
#include "common/ascii_plot.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/io.h"
#include "data/surrogates.h"
#include "defense/trim.h"
#include "eval/ratio_loss.h"
#include "index/cdf_regression.h"

using namespace lispoison;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerate(const FlagParser& flags) {
  const std::string dist = flags.GetString("dist", "uniform");
  const std::int64_t n = flags.GetInt("keys", 1000);
  const Key domain_hi = flags.GetInt("domain", 100000) - 1;
  const std::string out = flags.GetString("out");
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  if (out.empty()) {
    std::fprintf(stderr, "generate requires --out=<path>\n");
    return 1;
  }
  Result<KeySet> keyset = Status::InvalidArgument("unknown dist " + dist);
  const KeyDomain domain{0, domain_hi};
  if (dist == "uniform") {
    keyset = GenerateUniform(n, domain, &rng);
  } else if (dist == "lognormal") {
    keyset = GenerateLogNormal(n, domain, &rng);
  } else if (dist == "normal") {
    keyset = GenerateNormal(n, domain, &rng);
  } else if (dist == "salaries") {
    keyset = MakeMiamiSalariesSurrogate(&rng, n);
  } else if (dist == "latitudes") {
    keyset = MakeOsmLatitudesSurrogate(&rng, n);
  }
  if (!keyset.ok()) return Fail(keyset.status());
  if (Status st = SaveKeys(*keyset, out); !st.ok()) return Fail(st);
  std::printf("wrote %lld %s keys to %s (domain [%lld, %lld])\n",
              static_cast<long long>(keyset->size()), dist.c_str(),
              out.c_str(), static_cast<long long>(keyset->domain().lo),
              static_cast<long long>(keyset->domain().hi));
  return 0;
}

int CmdInspect(const FlagParser& flags) {
  const std::string in = flags.GetString("in");
  if (in.empty()) {
    std::fprintf(stderr, "inspect requires --in=<path>\n");
    return 1;
  }
  auto keyset = LoadKeys(in);
  if (!keyset.ok()) return Fail(keyset.status());
  auto fit = FitCdfRegression(*keyset);
  if (!fit.ok()) return Fail(fit.status());
  std::printf("keys: %lld, domain [%lld, %lld], density %.2f%%\n",
              static_cast<long long>(keyset->size()),
              static_cast<long long>(keyset->domain().lo),
              static_cast<long long>(keyset->domain().hi),
              100.0 * keyset->density());
  std::printf("linear CDF fit: rank = %.6g*key %+.6g, MSE %.6g\n\n",
              fit->model.w, fit->model.b, static_cast<double>(fit->mse));
  std::printf("CDF:\n");
  RenderCdfStaircase(std::cout, keyset->keys(), 72, 14);
  std::printf("\nkey density:\n");
  RenderKeyHistogram(std::cout, keyset->keys(), {},
                     keyset->domain().lo, keyset->domain().hi, 72);
  return 0;
}

int CmdAttack(const FlagParser& flags) {
  const std::string in = flags.GetString("in");
  const std::string out = flags.GetString("out");
  const double pct = flags.GetDouble("pct", 10);
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "attack requires --in and --out\n");
    return 1;
  }
  auto keyset = LoadKeys(in);
  if (!keyset.ok()) return Fail(keyset.status());
  std::vector<Key> poison;
  double ratio = 0;
  if (flags.GetBool("rmi")) {
    RmiAttackOptions opts;
    opts.poison_fraction = pct / 100.0;
    opts.model_size = flags.GetInt("model-size", 100);
    opts.alpha = flags.GetDouble("alpha", 3.0);
    auto attack = PoisonRmi(*keyset, opts);
    if (!attack.ok()) return Fail(attack.status());
    poison = attack->AllPoisonKeys();
    ratio = attack->rmi_ratio_loss;
    std::printf("RMI attack: %zu poison keys, RMI ratio loss %.2fx "
                "(victim retrained: %.2fx), %lld exchanges\n",
                poison.size(), ratio, attack->retrained_rmi_ratio,
                static_cast<long long>(attack->exchanges_applied));
  } else {
    const std::int64_t p = static_cast<std::int64_t>(
        static_cast<double>(keyset->size()) * pct / 100.0);
    auto attack = GreedyPoisonCdf(*keyset, p);
    if (!attack.ok()) return Fail(attack.status());
    poison = attack->poison_keys;
    ratio = attack->RatioLoss();
    std::printf("greedy attack: %zu poison keys, ratio loss %.2fx\n",
                poison.size(), ratio);
  }
  auto poisoned = keyset->Union(poison);
  if (!poisoned.ok()) return Fail(poisoned.status());
  if (Status st = SaveKeys(*poisoned, out); !st.ok()) return Fail(st);
  std::printf("wrote %lld keys (legit + poison) to %s\n",
              static_cast<long long>(poisoned->size()), out.c_str());
  return 0;
}

int CmdEvaluate(const FlagParser& flags) {
  const std::string clean_path = flags.GetString("clean");
  const std::string poisoned_path = flags.GetString("poisoned");
  if (clean_path.empty() || poisoned_path.empty()) {
    std::fprintf(stderr, "evaluate requires --clean and --poisoned\n");
    return 1;
  }
  auto clean = LoadKeys(clean_path);
  if (!clean.ok()) return Fail(clean.status());
  auto poisoned = LoadKeys(poisoned_path);
  if (!poisoned.ok()) return Fail(poisoned.status());
  auto ratio = ComputeRatioLoss(*clean, *poisoned);
  if (!ratio.ok()) return Fail(ratio.status());
  std::printf("ratio loss (poisoned MSE / clean MSE): %.4f\n", *ratio);
  return 0;
}

int CmdDefend(const FlagParser& flags) {
  const std::string in = flags.GetString("in");
  const std::string out = flags.GetString("out");
  const double assumed = flags.GetDouble("assumed-pct", 10);
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "defend requires --in and --out\n");
    return 1;
  }
  auto keyset = LoadKeys(in);
  if (!keyset.ok()) return Fail(keyset.status());
  TrimOptions opts;
  opts.assumed_poison_fraction = assumed / 100.0;
  auto trim = TrimDefense(*keyset, opts);
  if (!trim.ok()) return Fail(trim.status());
  auto kept = KeySet::Create(trim->kept_keys, keyset->domain());
  if (!kept.ok()) return Fail(kept.status());
  if (Status st = SaveKeys(*kept, out); !st.ok()) return Fail(st);
  std::printf("TRIM kept %zu keys (removed %zu), trimmed MSE %.4g, "
              "converged=%d after %lld iterations; wrote %s\n",
              trim->kept_keys.size(), trim->removed_keys.size(),
              static_cast<double>(trim->trimmed_loss), trim->converged,
              static_cast<long long>(trim->iterations), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.positional().empty()) {
    std::fprintf(
        stderr,
        "usage: %s <generate|inspect|attack|evaluate|defend> [--flags]\n",
        argv[0]);
    return 1;
  }
  const std::string& cmd = flags.positional().front();
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "inspect") return CmdInspect(flags);
  if (cmd == "attack") return CmdAttack(flags);
  if (cmd == "evaluate") return CmdEvaluate(flags);
  if (cmd == "defend") return CmdDefend(flags);
  std::fprintf(stderr, "unknown subcommand: %s\n", cmd.c_str());
  return 1;
}
