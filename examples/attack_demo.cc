// Walkthrough of the core single-model attack (Sections IV-C/IV-D):
// shows the loss landscape, the optimal single poisoning key, and the
// greedy multi-point attack on a small keyset, with an ASCII rendering
// of the CDF before and after poisoning.
//
//   $ ./attack_demo [--keys=40] [--domain=400] [--poisons=6] [--seed=3]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "attack/greedy_poisoner.h"
#include "attack/loss_landscape.h"
#include "attack/single_point.h"
#include "common/flags.h"
#include "common/rng.h"
#include "data/generators.h"
#include "index/cdf_regression.h"

using namespace lispoison;

namespace {

/// Renders the CDF as rows of '#' (legitimate) and '*' (poison) buckets.
void RenderCdf(const std::vector<Key>& legit, const std::vector<Key>& poison,
               Key lo, Key hi, int width) {
  std::printf("  key range [%lld, %lld], one column = %lld key values\n",
              static_cast<long long>(lo), static_cast<long long>(hi),
              static_cast<long long>((hi - lo + 1) / width + 1));
  std::vector<int> legit_counts(static_cast<std::size_t>(width), 0);
  std::vector<int> poison_counts(static_cast<std::size_t>(width), 0);
  const double scale = static_cast<double>(width) /
                       static_cast<double>(hi - lo + 1);
  for (Key k : legit) {
    auto b = static_cast<std::size_t>(static_cast<double>(k - lo) * scale);
    if (b >= legit_counts.size()) b = legit_counts.size() - 1;
    legit_counts[b] += 1;
  }
  for (Key k : poison) {
    auto b = static_cast<std::size_t>(static_cast<double>(k - lo) * scale);
    if (b >= poison_counts.size()) b = poison_counts.size() - 1;
    poison_counts[b] += 1;
  }
  int max_count = 1;
  for (std::size_t i = 0; i < legit_counts.size(); ++i) {
    max_count = std::max(max_count, legit_counts[i] + poison_counts[i]);
  }
  for (int level = max_count; level >= 1; --level) {
    std::string row = "  ";
    for (std::size_t i = 0; i < legit_counts.size(); ++i) {
      if (poison_counts[i] >= level - legit_counts[i] &&
          legit_counts[i] + poison_counts[i] >= level &&
          level > legit_counts[i]) {
        row += '*';
      } else if (legit_counts[i] >= level) {
        row += '#';
      } else {
        row += ' ';
      }
    }
    std::printf("%s\n", row.c_str());
  }
  std::printf("  %s\n", std::string(static_cast<std::size_t>(width), '-').c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 40);
  const Key domain_hi = flags.GetInt("domain", 400) - 1;
  const std::int64_t p = flags.GetInt("poisons", 6);
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 3)));

  auto keyset = GenerateUniform(n, KeyDomain{0, domain_hi}, &rng);
  if (!keyset.ok()) {
    std::fprintf(stderr, "%s\n", keyset.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Step 1: the victim model ===\n");
  auto fit = FitCdfRegression(*keyset);
  std::printf("linear regression on the CDF of %lld keys: rank = %.4f*key "
              "+ %.4f, MSE %.4f\n\n",
              static_cast<long long>(n), fit->model.w, fit->model.b,
              static_cast<double>(fit->mse));
  RenderCdf(keyset->keys(), {}, 0, domain_hi, 72);

  std::printf("\n=== Step 2: the loss landscape (what the attacker sees) "
              "===\n");
  auto landscape = LossLandscape::Create(*keyset);
  auto best = landscape->FindOptimal(/*interior_only=*/true);
  std::printf("evaluating every gap endpoint in O(n): best single "
              "poisoning key is %lld, lifting MSE %.4f -> %.4f\n",
              static_cast<long long>(best->key),
              static_cast<double>(landscape->BaseLoss()),
              static_cast<double>(best->loss));

  std::printf("\n=== Step 3: greedy multi-point attack (Algorithm 1) ===\n");
  auto attack = GreedyPoisonCdf(*keyset, p);
  if (!attack.ok()) {
    std::fprintf(stderr, "%s\n", attack.status().ToString().c_str());
    return 1;
  }
  std::printf("inserted %lld poisoning keys: ",
              static_cast<long long>(p));
  for (Key kp : attack->poison_keys) {
    std::printf("%lld ", static_cast<long long>(kp));
  }
  std::printf("\nratio loss: %.2fx (MSE %.4f -> %.4f)\n\n",
              attack->RatioLoss(), static_cast<double>(attack->base_loss),
              static_cast<double>(attack->poisoned_loss));
  RenderCdf(keyset->keys(), attack->poison_keys, 0, domain_hi, 72);
  std::printf("  legend: # legitimate keys, * poisoning keys (note how "
              "they cluster in dense regions)\n");
  return 0;
}
