// Reproduces Figure 7: RMI poisoning on the two real-world datasets
// (via the documented surrogates in src/data/surrogates.h): Miami-Dade
// salaries (n=5,300) and OSM school latitudes (n=302,973). Three
// second-stage model sizes {50, 100, 200}, poisoning percentages
// {5, 10, 20}, alpha = 3 — exactly the paper's setups. Also prints a
// coarse CDF profile of each surrogate for visual comparison with the
// paper's CDF plots.
//
// Flags: --osm-n=0 (0 = paper scale) --miami-n=0 --sizes=50,100,200
//        --pcts=5,10,20 --seed=S --csv

#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "data/surrogates.h"
#include "eval/experiments.h"

namespace lispoison {
namespace {

void PrintCdfProfile(const char* name, const KeySet& ks) {
  std::printf("CDF profile of %s (n=%lld, domain [%lld, %lld], density "
              "%.2f%%):\n",
              name, static_cast<long long>(ks.size()),
              static_cast<long long>(ks.domain().lo),
              static_cast<long long>(ks.domain().hi), 100.0 * ks.density());
  // Deciles of the key distribution: where each 10% of ranks sits.
  std::printf("  rank deciles at keys: ");
  for (int d = 0; d <= 10; ++d) {
    const std::int64_t idx =
        std::min<std::int64_t>(ks.size() - 1, d * (ks.size() - 1) / 10);
    std::printf("%lld ", static_cast<long long>(ks.at(idx)));
  }
  std::printf("\n\n");
}

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const auto sizes = flags.GetIntList("sizes", {50, 100, 200});
  const auto pcts = flags.GetDoubleList("pcts", {5, 10, 20});
  const std::int64_t miami_n = flags.GetInt("miami-n", 0);
  // OSM at paper scale (302,973 keys) runs in a few minutes; default to
  // a 30k-key scaled instance and let --osm-n=0 request paper scale...
  const std::int64_t osm_n = flags.GetInt("osm-n", 30000);

  std::printf("=== Figure 7: RMI poisoning on real-data surrogates ===\n\n");

  {
    Rng rng(seed);
    auto miami = MakeMiamiSalariesSurrogate(&rng, miami_n);
    if (miami.ok()) PrintCdfProfile("Miami-Dade salaries", *miami);
    Rng rng2(seed);
    auto osm = MakeOsmLatitudesSurrogate(&rng2, osm_n);
    if (osm.ok()) PrintCdfProfile("OSM school latitudes", *osm);
  }

  TextTable table;
  table.SetHeader({"dataset", "n", "model size", "#models", "poison%",
                   "box q1", "box median", "box q3", "box max", "RMI ratio",
                   "victim ratio"});
  int failures = 0;
  struct DatasetRow {
    RealDataset dataset;
    const char* name;
    std::int64_t n_override;
    std::int64_t paper_n;
  };
  const DatasetRow datasets[] = {
      {RealDataset::kMiamiSalaries, "miami-salaries", miami_n, 5300},
      {RealDataset::kOsmLatitudes, "osm-latitudes", osm_n, 302973},
  };
  for (const auto& ds : datasets) {
    const std::int64_t effective_n =
        ds.n_override > 0 ? ds.n_override : ds.paper_n;
    for (const std::int64_t size : sizes) {
      RmiRealConfig config;
      config.dataset = ds.dataset;
      config.n_override = ds.n_override;
      config.model_size = size;
      config.poison_pcts = pcts;
      config.alpha = 3.0;
      config.seed = seed;
      auto cells_or = RunRmiReal(config);
      if (!cells_or.ok()) {
        std::fprintf(stderr, "panel failed (%s, size=%lld): %s\n", ds.name,
                     static_cast<long long>(size),
                     cells_or.status().ToString().c_str());
        ++failures;
        continue;
      }
      for (const auto& cell : *cells_or) {
        table.AddRow({ds.name, TextTable::Fmt(effective_n),
                      TextTable::Fmt(size),
                      TextTable::Fmt(effective_n / size),
                      TextTable::Fmt(cell.poison_pct, 3),
                      TextTable::Fmt(cell.per_model_ratio.q1, 4),
                      TextTable::Fmt(cell.per_model_ratio.median, 4),
                      TextTable::Fmt(cell.per_model_ratio.q3, 4),
                      TextTable::Fmt(cell.per_model_ratio.max, 4),
                      TextTable::Fmt(cell.rmi_ratio, 4),
                      TextTable::Fmt(cell.retrained_rmi_ratio, 4)});
      }
    }
  }
  if (flags.GetBool("csv")) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf(
      "\nExpected shape (paper): RMI ratio between ~4x and ~24x, growing\n"
      "with poison%% and with model size; individual models up to ~70x.\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
