// Extension experiment (§VI future directions): deletion and
// modification adversaries. Compares, at equal budget, the damage of
// (a) inserting p poisoning keys (Algorithm 1), (b) deleting p
// legitimate keys, and (c) relocating p keys the adversary owns — the
// modification adversary never changes |K|, so size-anomaly detection
// is blind to it.
//
// Flags: --keys=500 --budget-pct=10 --trials=10 --seed=S

#include <cstdio>
#include <iostream>

#include "attack/deletion_attack.h"
#include "attack/greedy_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "data/generators.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 500);
  const double pct = flags.GetDouble("budget-pct", 10);
  const std::int64_t trials = flags.GetInt("trials", 10);
  Rng master(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  const std::int64_t budget =
      static_cast<std::int64_t>(static_cast<double>(n) * pct / 100.0);

  std::printf("=== Extension: insertion vs deletion vs modification ===\n");
  std::printf("n=%lld uniform keys, budget %lld keys (%.0f%%), %lld "
              "trials\n\n",
              static_cast<long long>(n), static_cast<long long>(budget), pct,
              static_cast<long long>(trials));

  std::vector<double> ins_ratios, del_ratios, mod_ratios;
  for (std::int64_t t = 0; t < trials; ++t) {
    Rng rng = master.Fork(static_cast<std::uint64_t>(t));
    auto keyset_or = GenerateUniform(n, KeyDomain{0, 10 * n}, &rng);
    if (!keyset_or.ok()) return 1;
    auto ins = GreedyPoisonCdf(*keyset_or, budget);
    auto del = GreedyDeleteCdf(*keyset_or, budget);
    auto mod = GreedyModifyCdf(*keyset_or, budget);
    if (!ins.ok() || !del.ok() || !mod.ok()) {
      std::fprintf(stderr, "attack failed at trial %lld\n",
                   static_cast<long long>(t));
      return 1;
    }
    ins_ratios.push_back(ins->RatioLoss());
    del_ratios.push_back(del->RatioLoss());
    mod_ratios.push_back(mod->RatioLoss());
  }

  TextTable table;
  table.SetHeader({"adversary", "|K| change", "min", "median", "max",
                   "mean"});
  auto add = [&table](const char* name, const char* delta,
                      std::vector<double> ratios) {
    const BoxplotSummary s = ComputeBoxplot(std::move(ratios));
    table.AddRow({name, delta, TextTable::Fmt(s.min, 4),
                  TextTable::Fmt(s.median, 4), TextTable::Fmt(s.max, 4),
                  TextTable::Fmt(s.mean, 4)});
  };
  add("insertion (Alg. 1)", "+p", std::move(ins_ratios));
  add("deletion", "-p", std::move(del_ratios));
  add("modification", "0", std::move(mod_ratios));
  table.Print(std::cout);
  std::printf(
      "\nReading: modification dominates at equal budget — each move is a\n"
      "worst-key deletion PLUS an optimal re-insertion, i.e. roughly two\n"
      "attack actions per unit of budget, with zero size anomaly for a\n"
      "defender to notice. Insertion (Algorithm 1) beats deletion alone\n"
      "because added keys also shift every larger rank.\n");
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
