// Reproduces Figure 2: the compound effect of a single poisoning key on a
// 10-key set. Prints the (key, rank) table and fitted regression before
// and after inserting the optimal poisoning key, including each key's
// error contribution — the blue vertical segments of the figure.
//
// Flags: --keys=N (default 10) --domain=M (default 41) --seed=S

#include <cstdio>
#include <iostream>

#include "attack/single_point.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "data/generators.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 10);
  const Key domain_hi = flags.GetInt("domain", 41) - 1;
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.GetInt("seed", 3));
  Rng rng(seed);

  auto keyset_or = GenerateUniform(n, KeyDomain{0, domain_hi}, &rng);
  if (!keyset_or.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 keyset_or.status().ToString().c_str());
    return 1;
  }
  const KeySet& keyset = *keyset_or;

  auto clean_fit_or = FitCdfRegression(keyset);
  auto attack_or = OptimalSinglePoint(keyset);
  if (!clean_fit_or.ok() || !attack_or.ok()) {
    std::fprintf(stderr, "attack failed: %s\n",
                 attack_or.ok() ? clean_fit_or.status().ToString().c_str()
                                : attack_or.status().ToString().c_str());
    return 1;
  }
  const CdfFit& clean = *clean_fit_or;
  const SinglePointResult& attack = *attack_or;

  auto poisoned_or = keyset.Union({attack.poison_key});
  auto poisoned_fit_or = FitCdfRegression(*poisoned_or);

  std::printf("=== Figure 2: compound effect of one poisoning key ===\n");
  std::printf("n=%lld keys, domain [0, %lld], seed %llu\n",
              static_cast<long long>(n), static_cast<long long>(domain_hi),
              static_cast<unsigned long long>(seed));
  std::printf("\nOptimal poisoning key: %lld (rank it takes: %lld)\n",
              static_cast<long long>(attack.poison_key),
              static_cast<long long>(keyset.CountLess(attack.poison_key) + 1));
  std::printf("Regression before: rank = %.6f * key + %.6f   (MSE %.6f)\n",
              clean.model.w, clean.model.b,
              static_cast<double>(clean.mse));
  std::printf("Regression after:  rank = %.6f * key + %.6f   (MSE %.6f)\n",
              poisoned_fit_or->model.w, poisoned_fit_or->model.b,
              static_cast<double>(poisoned_fit_or->mse));
  std::printf("Ratio Loss: %.3f\n\n", attack.RatioLoss());

  TextTable table;
  table.SetHeader({"key", "rank(before)", "err(before)", "rank(after)",
                   "err(after)", "note"});
  for (std::int64_t i = 0; i < keyset.size(); ++i) {
    const Key k = keyset.at(i);
    const Rank r_before = i + 1;
    const Rank r_after = k > attack.poison_key ? r_before + 1 : r_before;
    const double e_before =
        clean.model.Predict(k) - static_cast<double>(r_before);
    const double e_after = poisoned_fit_or->model.Predict(k) -
                           static_cast<double>(r_after);
    const bool shifted = k > attack.poison_key;
    table.AddRow({TextTable::Fmt(k), TextTable::Fmt(r_before),
                  TextTable::Fmt(e_before, 4), TextTable::Fmt(r_after),
                  TextTable::Fmt(e_after, 4),
                  shifted ? "rank +1 (compound effect)" : ""});
    if (i + 1 <= keyset.size() && keyset.CountLess(attack.poison_key) == i + 1) {
      const Rank rp = i + 2;
      const double ep = poisoned_fit_or->model.Predict(attack.poison_key) -
                        static_cast<double>(rp);
      table.AddRow({TextTable::Fmt(attack.poison_key) + "*",
                    "-", "-", TextTable::Fmt(rp), TextTable::Fmt(ep, 4),
                    "POISON"});
    }
  }
  table.Print(std::cout);
  std::printf("\n(*) poisoning key. Keys above it absorb the rank shift,\n"
              "forcing the retrained line to accumulate error from most of\n"
              "the legitimate points — the paper's compound effect.\n");
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
