// Extension experiment (§VI future directions): attackers with limited
// knowledge of the training data. Sweeps the observed fraction of K and
// reports the damage that transfers to the victim trained on the full
// poisoned keyset, versus the damage the attacker predicted on its
// sample.
//
// Flags: --keys=1000 --pct=10 --trials=10 --fractions=0.1,...  --seed=S

#include <cstdio>
#include <iostream>

#include "attack/partial_knowledge.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "data/generators.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 1000);
  const double pct = flags.GetDouble("pct", 10);
  const std::int64_t trials = flags.GetInt("trials", 10);
  const auto fractions =
      flags.GetDoubleList("fractions", {0.05, 0.1, 0.25, 0.5, 0.75, 1.0});
  Rng master(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));

  std::printf("=== Extension: partial-knowledge (grey-box) poisoning ===\n");
  std::printf("n=%lld uniform keys, %.0f%% poisoning budget, %lld trials "
              "per observed fraction\n\n",
              static_cast<long long>(n), pct,
              static_cast<long long>(trials));

  TextTable table;
  table.SetHeader({"observed", "achieved ratio (median)", "achieved (max)",
                   "injected/planned", "predicted/achieved"});
  for (const double frac : fractions) {
    std::vector<double> achieved, inject_rate, predict_gap;
    for (std::int64_t t = 0; t < trials; ++t) {
      Rng rng = master.Fork(
          static_cast<std::uint64_t>(t * 1000 +
                                     static_cast<std::int64_t>(frac * 100)));
      auto keyset_or = GenerateUniform(n, KeyDomain{0, 10 * n}, &rng);
      if (!keyset_or.ok()) return 1;
      PartialKnowledgeOptions opts;
      opts.observe_fraction = frac;
      opts.poison_fraction = pct / 100.0;
      Rng attack_rng = rng.Fork(7);
      auto result = PoisonWithPartialKnowledge(*keyset_or, opts, &attack_rng);
      if (!result.ok()) {
        std::fprintf(stderr, "attack failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      achieved.push_back(result->AchievedRatioLoss());
      inject_rate.push_back(
          result->planned_keys.empty()
              ? 0.0
              : static_cast<double>(result->injected_keys.size()) /
                    static_cast<double>(result->planned_keys.size()));
      predict_gap.push_back(
          result->achieved_loss > 0
              ? static_cast<double>(result->predicted_loss /
                                    result->achieved_loss)
              : 0.0);
    }
    const BoxplotSummary box = ComputeBoxplot(achieved);
    table.AddRow({TextTable::Fmt(frac, 3), TextTable::Fmt(box.median, 4),
                  TextTable::Fmt(box.max, 4),
                  TextTable::Fmt(Mean(inject_rate), 3),
                  TextTable::Fmt(Mean(predict_gap), 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: damage survives partial knowledge remarkably well —\n"
      "the greedy attack targets dense regions whose location a modest\n"
      "sample already reveals. Collisions with unobserved keys (injected\n"
      "< planned) only appear at very low observation fractions.\n");
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
