// Ablation of Algorithm 2's design knobs:
//  (1) the per-model poisoning threshold multiplier alpha in {1,2,3,4}
//      — alpha=1 forces the rigid "fixed threshold" allocation the paper
//      rejects, larger alpha gives the greedy volume re-allocation room;
//  (2) greedy volume exchanges on vs off (max_exchanges < 0 disables);
//  (3) the termination bound epsilon.
//
// Flags: --keys=20000 --model-size=200 --pct=10 --seed=S

#include <cstdio>
#include <iostream>

#include "attack/rmi_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "data/generators.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 20000);
  const std::int64_t model_size = flags.GetInt("model-size", 200);
  const double pct = flags.GetDouble("pct", 10);
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));

  auto keyset_or =
      GenerateLogNormal(n, KeyDomain{0, 100 * n}, &rng);
  if (!keyset_or.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 keyset_or.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Ablation: Algorithm 2 knobs (alpha, exchanges, epsilon) "
              "===\n");
  std::printf("n=%lld log-normal keys, model size %lld, poisoning %.1f%%\n\n",
              static_cast<long long>(n), static_cast<long long>(model_size),
              pct);

  TextTable table;
  table.SetHeader({"alpha", "exchanges", "epsilon", "RMI ratio",
                   "victim ratio", "box median", "box max",
                   "exchanges applied"});
  auto run_one = [&](double alpha, bool exchanges, long double epsilon) {
    RmiAttackOptions opts;
    opts.poison_fraction = pct / 100.0;
    opts.model_size = model_size;
    opts.alpha = alpha;
    opts.epsilon = epsilon;
    opts.max_exchanges = exchanges ? 0 : -1;  // -1 disables re-allocation.
    opts.num_threads = 0;  // One worker per hardware thread.
    auto result = PoisonRmi(*keyset_or, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "attack failed: %s\n",
                   result.status().ToString().c_str());
      return false;
    }
    const auto box = ComputeBoxplot(std::vector<double>(
        result->per_model_ratio.begin(), result->per_model_ratio.end()));
    table.AddRow({TextTable::Fmt(alpha, 2), exchanges ? "on" : "off",
                  TextTable::Fmt(static_cast<double>(epsilon), 2),
                  TextTable::Fmt(result->rmi_ratio_loss, 4),
                  TextTable::Fmt(result->retrained_rmi_ratio, 4),
                  TextTable::Fmt(box.median, 4), TextTable::Fmt(box.max, 4),
                  TextTable::Fmt(result->exchanges_applied)});
    return true;
  };

  bool ok = true;
  for (const double alpha : {1.0, 2.0, 3.0, 4.0}) {
    ok = run_one(alpha, /*exchanges=*/true, 1e-9L) && ok;
  }
  ok = run_one(3.0, /*exchanges=*/false, 1e-9L) && ok;
  for (const long double eps : {1e-3L, 1e-6L, 1e-12L}) {
    ok = run_one(3.0, /*exchanges=*/true, eps) && ok;
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: alpha=1 pins every model at the uniform quota (no\n"
      "skewed allocation possible); exchanges-off shows the value of the\n"
      "CHANGELOSS re-allocation; epsilon mostly affects run time.\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
