// Extension experiment (Section VI discussion): how do candidate
// mitigations fare against the greedy CDF attack? Runs the attack on
// uniform keysets, then applies (a) range filtering, (b) IQR outlier
// filtering, (c) density-spike filtering, and (d) TRIM-for-CDF, and
// reports for each: poison recall, legitimate-key collateral, and the
// post-defense Ratio Loss of a model retrained on the sanitized keys.
//
// Flags: --keys=500 --pct=10 --trials=10 --seed=S

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "attack/greedy_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "data/generators.h"
#include "defense/filters.h"
#include "defense/trim.h"
#include "index/cdf_regression.h"

namespace lispoison {
namespace {

long double LossOfKeys(std::vector<Key> keys) {
  std::sort(keys.begin(), keys.end());
  MomentAccumulator acc;
  Rank r = 1;
  const Key shift = keys.empty() ? 0 : keys.front();
  for (Key k : keys) acc.Add(k - shift, r++);
  return keys.empty() ? 0 : FitFromMoments(acc).mse;
}

struct DefenseRow {
  std::vector<double> recall;
  std::vector<double> collateral;  // Legitimate keys removed.
  std::vector<double> post_ratio;  // Retrained loss / clean loss.
};

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 500);
  const double pct = flags.GetDouble("pct", 10);
  const std::int64_t trials = flags.GetInt("trials", 10);
  Rng master(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  const std::int64_t p =
      static_cast<std::int64_t>(static_cast<double>(n) * pct / 100.0);

  std::printf("=== Defense evaluation vs the greedy CDF attack ===\n");
  std::printf("n=%lld uniform keys, %lld poisons (%.0f%%), %lld trials\n\n",
              static_cast<long long>(n), static_cast<long long>(p), pct,
              static_cast<long long>(trials));

  DefenseRow range_row, iqr_row, density_row, trim_row, none_row;
  for (std::int64_t t = 0; t < trials; ++t) {
    Rng rng = master.Fork(static_cast<std::uint64_t>(t));
    auto keyset_or = GenerateUniform(n, KeyDomain{0, 10 * n}, &rng);
    if (!keyset_or.ok()) return 1;
    auto attack_or = GreedyPoisonCdf(*keyset_or, p);
    if (!attack_or.ok()) return 1;
    auto poisoned_or = ApplyPoison(*keyset_or, attack_or->poison_keys);
    if (!poisoned_or.ok()) return 1;
    const long double clean_loss = LossOfKeys(keyset_or->keys());

    auto record = [&](DefenseRow* row, const std::vector<Key>& removed,
                      const std::vector<Key>& kept) {
      const DefenseQuality q =
          ScoreDefense(removed, attack_or->poison_keys);
      row->recall.push_back(q.recall);
      row->collateral.push_back(static_cast<double>(q.false_positives));
      row->post_ratio.push_back(
          SafeRatioLoss(LossOfKeys(kept), clean_loss));
    };

    // No defense.
    record(&none_row, {}, poisoned_or->keys());

    // Range filter to the legitimate min/max (which the attacker knows
    // and respects — expect zero recall).
    {
      std::vector<Key> keys = poisoned_or->keys();
      auto removed = RangeFilter(&keys, keyset_or->keys().front(),
                                 keyset_or->keys().back());
      record(&range_row, removed, keys);
    }
    // IQR outlier filter.
    {
      std::vector<Key> keys = poisoned_or->keys();
      auto removed = IqrOutlierFilter(&keys, 1.5);
      record(&iqr_row, removed, keys);
    }
    // Density-spike filter (window = domain/64, threshold 2.5x average).
    {
      std::vector<Key> keys = poisoned_or->keys();
      auto removed =
          DensitySpikeFilter(&keys, poisoned_or->domain(), 64, 2.5);
      record(&density_row, removed, keys);
    }
    // TRIM with the true poisoning fraction (best case for the defense).
    {
      TrimOptions opts;
      opts.assumed_poison_fraction =
          static_cast<double>(p) / static_cast<double>(n + p);
      auto trim = TrimDefense(*poisoned_or, opts);
      if (trim.ok()) {
        record(&trim_row, trim->removed_keys, trim->kept_keys);
      }
    }
  }

  TextTable table;
  table.SetHeader({"defense", "mean recall", "mean collateral",
                   "post-defense ratio (median)", "notes"});
  auto add = [&table](const char* name, const DefenseRow& row,
                      const char* note) {
    table.AddRow({name, TextTable::Fmt(Mean(row.recall), 3),
                  TextTable::Fmt(Mean(row.collateral), 3),
                  TextTable::Fmt(ComputeBoxplot(row.post_ratio).median, 4),
                  note});
  };
  add("none", none_row, "attack at full strength");
  add("range-filter", range_row, "attacker stays in-range: blind");
  add("iqr-outlier", iqr_row, "poisons are not outliers: blind");
  add("density-spike", density_row, "catches some, hurts dense legit data");
  add("trim-cdf", trim_row, "needs true fraction; collateral damage");
  table.Print(std::cout);
  std::printf(
      "\nReading: recall is the fraction of poison keys removed; collateral\n"
      "is legitimate keys removed per trial; post-defense ratio is the MSE\n"
      "of a model retrained on the sanitized set over the clean MSE (1.0\n"
      "would mean full recovery).\n");
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
