// Reproduces Figure 3: the loss function L(kp) as a sequence over the key
// domain and its first discrete derivative, demonstrating the per-gap
// convexity of Theorem 2 that justifies endpoint-only evaluation.
//
// Flags: --keys=N (default 10) --domain=M (default 41) --seed=S
//        --csv (emit raw sweep as CSV instead of a summary table)

#include <cstdio>
#include <iostream>

#include "attack/loss_landscape.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "data/generators.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 10);
  const Key domain_hi = flags.GetInt("domain", 41) - 1;
  Rng rng(static_cast<std::uint64_t>(flags.GetInt("seed", 3)));

  auto keyset_or = GenerateUniform(n, KeyDomain{0, domain_hi}, &rng);
  if (!keyset_or.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 keyset_or.status().ToString().c_str());
    return 1;
  }
  auto landscape_or = LossLandscape::Create(*keyset_or);
  if (!landscape_or.ok()) {
    std::fprintf(stderr, "landscape failed: %s\n",
                 landscape_or.status().ToString().c_str());
    return 1;
  }
  const LossLandscape& ll = *landscape_or;
  const auto sweep = ll.Sweep(/*interior_only=*/false);

  std::printf("=== Figure 3: loss landscape over the key domain ===\n");
  std::printf("n=%lld keys, domain [0, %lld], base loss %.6f\n\n",
              static_cast<long long>(n), static_cast<long long>(domain_hi),
              static_cast<double>(ll.BaseLoss()));

  TextTable table;
  table.SetHeader({"kp", "L(kp)", "dL", "gap", "convex?"});
  long double prev_loss = 0;
  Key prev_key = -2;
  int gap_id = 0;
  std::size_t convex_checks = 0, convex_ok = 0;
  long double prev_delta = 0;
  bool have_prev_delta = false;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& [kp, loss] = sweep[i];
    const bool same_gap = (kp == prev_key + 1);
    if (!same_gap) {
      ++gap_id;
      have_prev_delta = false;
    }
    std::string delta_str = "-";
    std::string convex_str = "-";
    if (same_gap) {
      const long double delta = loss - prev_loss;
      delta_str = TextTable::Fmt(static_cast<double>(delta), 4);
      if (have_prev_delta) {
        ++convex_checks;
        const bool convex = delta >= prev_delta - 1e-9L;
        if (convex) ++convex_ok;
        convex_str = convex ? "yes" : "NO";
      }
      prev_delta = delta;
      have_prev_delta = true;
    }
    table.AddRow({TextTable::Fmt(kp),
                  TextTable::Fmt(static_cast<double>(loss), 6), delta_str,
                  TextTable::Fmt(static_cast<std::int64_t>(gap_id)),
                  convex_str});
    prev_loss = loss;
    prev_key = kp;
  }
  if (flags.GetBool("csv")) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\nConvexity checks within gaps: %zu/%zu passed "
              "(Theorem 2: the discrete derivative is non-decreasing inside "
              "every gap)\n",
              convex_ok, convex_checks);
  auto best = ll.FindOptimal(/*interior_only=*/true);
  if (best.ok()) {
    std::printf("Optimal interior poisoning key: %lld with loss %.6f "
                "(found from gap endpoints only)\n",
                static_cast<long long>(best->key),
                static_cast<double>(best->loss));
  }
  return convex_ok == convex_checks ? 0 : 1;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
