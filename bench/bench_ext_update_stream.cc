// Extension experiment (§VI future directions): poisoning THROUGH the
// update path of an updatable learned index. The adversary's poison
// keys arrive interleaved with legitimate inserts; each automatic
// retrain bakes the accumulated poison into the base RMI. Reports base
// RMI loss and lookup probes over the stream.
//
// Flags: --base=2000 --stream=400 --poison-share=0.5 --threshold=0.05
//        --seed=S

#include <cstdio>
#include <iostream>

#include "attack/rmi_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "data/generators.h"
#include "index/dynamic_index.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t base_n = flags.GetInt("base", 2000);
  const std::int64_t stream_n = flags.GetInt("stream", 400);
  const double poison_share = flags.GetDouble("poison-share", 0.5);
  const double threshold = flags.GetDouble("threshold", 0.05);
  Rng master(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));

  const KeyDomain domain{0, 100 * base_n};
  Rng rng = master.Fork(1);
  auto base_or = GenerateUniform(base_n, domain, &rng);
  if (!base_or.ok()) return 1;

  DynamicIndexOptions opts;
  opts.rmi.target_model_size = 100;
  opts.rmi.root_kind = RootModelKind::kOracle;
  opts.retrain_threshold = threshold;
  auto idx_or = DynamicLearnedIndex::Build(*base_or, opts);
  if (!idx_or.ok()) return 1;
  DynamicLearnedIndex& idx = *idx_or;

  std::printf("=== Extension: poisoning via the update stream ===\n");
  std::printf("base n=%lld, stream %lld inserts (%.0f%% adversarial), "
              "retrain threshold %.0f%%\n\n",
              static_cast<long long>(base_n),
              static_cast<long long>(stream_n), 100 * poison_share,
              100 * threshold);
  std::printf("initial base RMI loss: %.4f\n\n",
              static_cast<double>(idx.BaseRmiLoss()));

  // Plan poison against the current visible keyset; adversary replans
  // after every retrain (white-box assumption of the paper).
  const std::int64_t poison_total = static_cast<std::int64_t>(
      static_cast<double>(stream_n) * poison_share);
  const std::int64_t legit_total = stream_n - poison_total;

  TextTable table;
  table.SetHeader({"stream position", "retrains", "base RMI loss",
                   "vs clean start"});
  const long double loss0 = idx.BaseRmiLoss();

  Rng legit_rng = master.Fork(2);
  std::vector<Key> poison_queue;
  std::int64_t sent_poison = 0, sent_legit = 0, step = 0;
  std::int64_t last_retrains = -1;
  while (sent_poison < poison_total || sent_legit < legit_total) {
    // Replenish the adversary's plan after each retrain.
    if (poison_queue.empty() && sent_poison < poison_total &&
        idx.retrain_count() != last_retrains) {
      last_retrains = idx.retrain_count();
      std::vector<Key> visible = idx.base().keys();
      auto keyset = KeySet::Create(std::move(visible), domain);
      if (keyset.ok()) {
        // RMI-aware plan (Algorithm 2) against the currently visible
        // base keys, in chunks the buffer can absorb per retrain.
        const std::int64_t chunk =
            std::min<std::int64_t>(poison_total - sent_poison, 100);
        RmiAttackOptions plan_opts;
        plan_opts.poison_fraction =
            static_cast<double>(chunk) /
            static_cast<double>(keyset->size());
        plan_opts.model_size = 100;
        auto plan = PoisonRmi(*keyset, plan_opts);
        if (plan.ok()) poison_queue = plan->AllPoisonKeys();
      }
    }
    // Interleave: alternate legitimate and adversarial inserts at the
    // requested share.
    const bool send_poison =
        sent_poison < poison_total &&
        (sent_legit >= legit_total ||
         static_cast<double>(sent_poison) <
             poison_share * static_cast<double>(step + 1));
    if (send_poison && !poison_queue.empty()) {
      const Key kp = poison_queue.front();
      poison_queue.erase(poison_queue.begin());
      if (idx.Insert(kp).ok()) ++sent_poison;
    } else {
      // Legitimate traffic: uniform fresh keys.
      Key k;
      int guard = 0;
      do {
        k = legit_rng.UniformInt(domain.lo, domain.hi);
      } while (idx.Lookup(k).found && ++guard < 100);
      if (idx.Insert(k).ok()) ++sent_legit;
    }
    ++step;
    if (step % (stream_n / 8 > 0 ? stream_n / 8 : 1) == 0) {
      table.AddRow({TextTable::Fmt(step), TextTable::Fmt(idx.retrain_count()),
                    TextTable::Fmt(static_cast<double>(idx.BaseRmiLoss()), 4),
                    TextTable::Fmt(static_cast<double>(idx.BaseRmiLoss() /
                                                       loss0),
                                   4)});
    }
  }
  if (idx.ForceRetrain().ok()) {
    table.AddRow({"final (forced retrain)", TextTable::Fmt(idx.retrain_count()),
                  TextTable::Fmt(static_cast<double>(idx.BaseRmiLoss()), 4),
                  TextTable::Fmt(
                      static_cast<double>(idx.BaseRmiLoss() / loss0), 4)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: every automatic retrain folds the accumulated poison\n"
      "into the base model; the loss ratchets upward with the stream\n"
      "even though each individual insert looks like normal traffic.\n");
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
