// Reproduces Figure 6: poisoning the two-stage RMI on synthetic keysets.
// Grid: {uniform, log-normal} x {two key-domain scales} x {three model
// sizes}; each panel sweeps poisoning percentage {1, 5, 10} and alpha
// {2, 3}, reporting the per-second-stage-model Ratio Loss boxplot plus
// the overall RMI ratio (the paper's black line).
//
// The paper runs n = 10^7 keys; the default here scales the instance to
// n = 10^5 while preserving every ratio (model sizes scale with n so the
// number of models and the per-model poisoning pressure match; the key
// domains scale to preserve the paper's densities of 1% and 20%). Use
// --full for paper-scale, which takes hours.
//
// Flags: --keys=100000 --seed=S --csv --quick --full

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "eval/experiments.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  std::int64_t n = flags.GetInt("keys", 100000);
  if (flags.GetBool("full")) n = 10000000;
  if (flags.GetBool("quick")) n = 10000;
  // Preserve the paper's ratios: model sizes 10^2..10^4 at n=10^7 hold
  // 10^-5..10^-3 of the keys; domains 5*10^7 and 10^9 give densities
  // 20% and 1%.
  const double scale = static_cast<double>(n) / 1e7;
  const std::vector<std::int64_t> model_sizes = {
      std::max<std::int64_t>(10, static_cast<std::int64_t>(100 * scale)),
      std::max<std::int64_t>(50, static_cast<std::int64_t>(1000 * scale)),
      std::max<std::int64_t>(200, static_cast<std::int64_t>(10000 * scale))};
  const std::vector<std::int64_t> domains = {
      static_cast<std::int64_t>(5.0 * n),    // Density 20%.
      static_cast<std::int64_t>(100.0 * n)}; // Density 1%.

  std::printf("=== Figure 6: RMI poisoning on synthetic keysets ===\n");
  std::printf("n=%lld (paper: 10^7; ratios preserved), model sizes "
              "{%lld, %lld, %lld}, domains {%lld, %lld}\n\n",
              static_cast<long long>(n),
              static_cast<long long>(model_sizes[0]),
              static_cast<long long>(model_sizes[1]),
              static_cast<long long>(model_sizes[2]),
              static_cast<long long>(domains[0]),
              static_cast<long long>(domains[1]));

  TextTable table;
  table.SetHeader({"dist", "domain", "model size", "#models", "poison%",
                   "alpha", "box q1", "box median", "box q3", "box max",
                   "RMI ratio", "victim ratio", "exchanges"});
  int failures = 0;
  for (const KeyDistribution dist :
       {KeyDistribution::kUniform, KeyDistribution::kLogNormal}) {
    for (const std::int64_t domain : domains) {
      for (const std::int64_t model_size : model_sizes) {
        RmiSyntheticConfig config;
        config.keys = n;
        config.model_size = model_size;
        config.key_domain = domain;
        config.poison_pcts = flags.GetDoubleList("pcts", {1, 5, 10});
        config.alphas = flags.GetDoubleList("alphas", {2, 3});
        config.distribution = dist;
        config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
        auto cells_or = RunRmiSynthetic(config);
        if (!cells_or.ok()) {
          std::fprintf(stderr, "panel failed (%s, m=%lld, s=%lld): %s\n",
                       dist == KeyDistribution::kUniform ? "uniform"
                                                         : "lognormal",
                       static_cast<long long>(domain),
                       static_cast<long long>(model_size),
                       cells_or.status().ToString().c_str());
          ++failures;
          continue;
        }
        for (const auto& cell : *cells_or) {
          table.AddRow(
              {dist == KeyDistribution::kUniform ? "uniform" : "lognormal",
               TextTable::Fmt(domain), TextTable::Fmt(model_size),
               TextTable::Fmt(n / model_size),
               TextTable::Fmt(cell.poison_pct, 3),
               TextTable::Fmt(cell.alpha, 2),
               TextTable::Fmt(cell.per_model_ratio.q1, 4),
               TextTable::Fmt(cell.per_model_ratio.median, 4),
               TextTable::Fmt(cell.per_model_ratio.q3, 4),
               TextTable::Fmt(cell.per_model_ratio.max, 4),
               TextTable::Fmt(cell.rmi_ratio, 4),
               TextTable::Fmt(cell.retrained_rmi_ratio, 4),
               TextTable::Fmt(cell.exchanges)});
        }
      }
    }
  }
  if (flags.GetBool("csv")) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf(
      "\nExpected shape (paper): ratio grows with poison%% and with model\n"
      "size (up to ~900x boxes for uniform, ~2700x for log-normal at the\n"
      "largest models); log-normal roughly 2x worse than uniform; alpha=2\n"
      "vs 3 close; domain size secondary.\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
