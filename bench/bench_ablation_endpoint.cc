// Ablation: the O(n) gap-endpoint attack vs the O(mn) brute-force sweep
// ("first attempt" of Section IV-C). Confirms identical attack quality
// and measures the speedup across instance sizes.
//
// Flags: --sizes=50,100,200,400 --density=0.2 --seed=S

#include <cstdio>
#include <iostream>

#include "attack/brute_force.h"
#include "attack/single_point.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/timer.h"
#include "data/generators.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const auto sizes = flags.GetIntList("sizes", {50, 100, 200, 400, 800});
  const double density = flags.GetDouble("density", 0.2);
  Rng master(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));

  std::printf("=== Ablation: endpoint attack vs brute-force sweep ===\n\n");
  TextTable table;
  table.SetHeader({"n", "m", "endpoint loss", "bruteforce loss", "equal?",
                   "endpoint us", "bruteforce us", "speedup"});
  int mismatches = 0;
  for (const std::int64_t n : sizes) {
    Rng rng = master.Fork(static_cast<std::uint64_t>(n));
    const Key m = static_cast<Key>(static_cast<double>(n) / density);
    auto keyset_or = GenerateUniform(n, KeyDomain{0, m - 1}, &rng);
    if (!keyset_or.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   keyset_or.status().ToString().c_str());
      return 1;
    }

    WallTimer t_fast;
    auto fast = OptimalSinglePoint(*keyset_or);
    const double fast_us = t_fast.ElapsedSeconds() * 1e6;

    WallTimer t_slow;
    auto slow = BruteForceSinglePoint(*keyset_or);
    const double slow_us = t_slow.ElapsedSeconds() * 1e6;

    if (!fast.ok() || !slow.ok()) {
      std::fprintf(stderr, "attack failed at n=%lld\n",
                   static_cast<long long>(n));
      return 1;
    }
    const double rel_diff =
        std::abs(static_cast<double>(fast->poisoned_loss -
                                     slow->poisoned_loss)) /
        std::max(1.0, static_cast<double>(slow->poisoned_loss));
    const bool equal = rel_diff < 1e-9;
    if (!equal) ++mismatches;
    table.AddRow({TextTable::Fmt(n), TextTable::Fmt(static_cast<std::int64_t>(m)),
                  TextTable::Fmt(static_cast<double>(fast->poisoned_loss), 6),
                  TextTable::Fmt(static_cast<double>(slow->poisoned_loss), 6),
                  equal ? "yes" : "NO", TextTable::Fmt(fast_us, 4),
                  TextTable::Fmt(slow_us, 4),
                  TextTable::Fmt(slow_us / std::max(1e-9, fast_us), 3)});
  }
  table.Print(std::cout);
  std::printf("\n%s: the endpoint attack returns the brute-force optimum "
              "on every instance.\n",
              mismatches == 0 ? "PASS" : "FAIL");
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
