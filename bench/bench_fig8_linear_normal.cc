// Reproduces Figure 8 (appendix): the Fig. 5 grid with keys drawn from a
// truncated normal distribution (mu = domain midpoint, sigma = domain
// width / 3). Normal CDFs are poorly captured by a line, so the base
// loss is already large and the attack's relative gain is smaller (the
// paper reports up to ~8x vs ~100x for uniform).
//
// Flags: --keys=... --densities=... --pcts=... --trials=20 --seed --csv
//        --quick

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "eval/experiments.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  LinearGridConfig config;
  config.key_counts = flags.GetIntList("keys", {100, 1000, 10000});
  config.densities = flags.GetDoubleList("densities", {0.2, 0.5, 0.8});
  config.poison_pcts = flags.GetDoubleList("pcts", {2, 4, 6, 8, 10, 12, 14});
  config.trials = flags.GetInt("trials", 20);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.distribution = KeyDistribution::kNormal;
  if (flags.GetBool("quick")) {
    config.key_counts = {100, 1000};
    config.trials = 5;
  }

  std::printf("=== Figure 8: poisoning linear regression on normal CDFs "
              "===\n");
  std::printf("keys ~ N(mu=(a+b)/2, sigma=(b-a)/3) truncated to the "
              "domain; %lld trials per cell\n\n",
              static_cast<long long>(config.trials));

  auto cells_or = RunLinearPoisonGrid(config);
  if (!cells_or.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 cells_or.status().ToString().c_str());
    return 1;
  }

  TextTable table;
  table.SetHeader({"keys", "density", "key domain", "poison%", "min", "q1",
                   "median", "q3", "max", "mean"});
  for (const auto& cell : *cells_or) {
    table.AddRow({TextTable::Fmt(cell.keys),
                  TextTable::Fmt(cell.density, 2),
                  TextTable::Fmt(cell.key_domain),
                  TextTable::Fmt(cell.poison_pct, 3),
                  TextTable::Fmt(cell.ratio_loss.min, 4),
                  TextTable::Fmt(cell.ratio_loss.q1, 4),
                  TextTable::Fmt(cell.ratio_loss.median, 4),
                  TextTable::Fmt(cell.ratio_loss.q3, 4),
                  TextTable::Fmt(cell.ratio_loss.max, 4),
                  TextTable::Fmt(cell.ratio_loss.mean, 4)});
  }
  if (flags.GetBool("csv")) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf(
      "\nExpected shape (paper): same growth-in-poison%% trend as Fig. 5\n"
      "but smaller ratios (base loss already large; up to ~8x).\n");
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
