// Extension experiment: end-to-end lookup timing with google-benchmark.
// The paper evaluates with the implementation-independent Ratio Loss
// because the original authors' optimized timing harness is private;
// this bench adds the timing evidence on our own substrate: clean RMI vs
// poisoned RMI vs B+Tree vs binary search, same key multiset sizes.
//
// Runs as a normal google-benchmark binary (supports --benchmark_filter
// etc.). Default key count kept modest so the full bench suite stays
// fast; override with --keys=N before the benchmark flags.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "attack/rmi_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"
#include "index/binary_search_index.h"
#include "index/btree.h"
#include "index/learned_index.h"

namespace lispoison {
namespace {

constexpr std::int64_t kKeys = 100000;
constexpr std::int64_t kModelSize = 500;
constexpr double kPoisonFraction = 0.10;

/// Shared fixture state, built once: clean keyset, poisoned keyset, and
/// the four indexes.
struct Fixture {
  KeySet clean;
  KeySet poisoned;
  std::unique_ptr<LearnedIndex> clean_rmi;
  std::unique_ptr<LearnedIndex> poisoned_rmi;
  std::unique_ptr<BPlusTree> btree;
  std::unique_ptr<BinarySearchIndex> binary;
  std::vector<Key> probe_keys;  // Shuffled stored keys to look up.

  static Fixture* Get() {
    static Fixture* instance = Build();
    return instance;
  }

  static Fixture* Build() {
    auto* f = new Fixture();
    Rng rng(20220613);
    auto clean_or = GenerateUniform(kKeys, KeyDomain{0, 100 * kKeys}, &rng);
    if (!clean_or.ok()) {
      std::fprintf(stderr, "fixture generation failed: %s\n",
                   clean_or.status().ToString().c_str());
      std::exit(1);
    }
    f->clean = *clean_or;

    RmiAttackOptions attack_opts;
    attack_opts.poison_fraction = kPoisonFraction;
    attack_opts.model_size = kModelSize;
    auto attack_or = PoisonRmi(f->clean, attack_opts);
    if (!attack_or.ok()) {
      std::fprintf(stderr, "fixture attack failed: %s\n",
                   attack_or.status().ToString().c_str());
      std::exit(1);
    }
    auto poisoned_or = f->clean.Union(attack_or->AllPoisonKeys());
    f->poisoned = *poisoned_or;

    RmiOptions idx_opts;
    idx_opts.target_model_size = kModelSize;
    idx_opts.root_kind = RootModelKind::kOracle;
    f->clean_rmi = std::make_unique<LearnedIndex>(
        *LearnedIndex::Build(f->clean, idx_opts));
    RmiOptions pois_opts = idx_opts;
    pois_opts.target_model_size = static_cast<std::int64_t>(
        kModelSize * (1.0 + kPoisonFraction));  // Keep N models equal.
    f->poisoned_rmi = std::make_unique<LearnedIndex>(
        *LearnedIndex::Build(f->poisoned, pois_opts));
    auto btree_or = BPlusTree::Build(f->clean, 64);
    f->btree = std::make_unique<BPlusTree>(std::move(btree_or).value());
    f->binary = std::make_unique<BinarySearchIndex>(f->clean);

    f->probe_keys = f->clean.keys();
    rng.Shuffle(&f->probe_keys);
    return f;
  }
};

void BM_CleanRmiLookup(benchmark::State& state) {
  Fixture* f = Fixture::Get();
  std::size_t i = 0;
  for (auto _ : state) {
    const Key k = f->probe_keys[i++ % f->probe_keys.size()];
    benchmark::DoNotOptimize(f->clean_rmi->Lookup(k));
  }
  state.counters["mean_probes"] =
      f->clean_rmi->ProfileAllKeys().MeanProbes();
  state.counters["mean_err_window"] =
      f->clean_rmi->rmi().MeanErrorWindow();
}
BENCHMARK(BM_CleanRmiLookup);

void BM_PoisonedRmiLookup(benchmark::State& state) {
  Fixture* f = Fixture::Get();
  std::size_t i = 0;
  for (auto _ : state) {
    const Key k = f->probe_keys[i++ % f->probe_keys.size()];
    benchmark::DoNotOptimize(f->poisoned_rmi->Lookup(k));
  }
  state.counters["mean_probes"] =
      f->poisoned_rmi->ProfileAllKeys().MeanProbes();
  state.counters["mean_err_window"] =
      f->poisoned_rmi->rmi().MeanErrorWindow();
}
BENCHMARK(BM_PoisonedRmiLookup);

void BM_CleanRmiLookupBounded(benchmark::State& state) {
  Fixture* f = Fixture::Get();
  std::size_t i = 0;
  for (auto _ : state) {
    const Key k = f->probe_keys[i++ % f->probe_keys.size()];
    benchmark::DoNotOptimize(f->clean_rmi->LookupBounded(k));
  }
}
BENCHMARK(BM_CleanRmiLookupBounded);

void BM_PoisonedRmiLookupBounded(benchmark::State& state) {
  Fixture* f = Fixture::Get();
  std::size_t i = 0;
  for (auto _ : state) {
    const Key k = f->probe_keys[i++ % f->probe_keys.size()];
    benchmark::DoNotOptimize(f->poisoned_rmi->LookupBounded(k));
  }
}
BENCHMARK(BM_PoisonedRmiLookupBounded);

void BM_BPlusTreeLookup(benchmark::State& state) {
  Fixture* f = Fixture::Get();
  std::size_t i = 0;
  for (auto _ : state) {
    const Key k = f->probe_keys[i++ % f->probe_keys.size()];
    benchmark::DoNotOptimize(f->btree->Lookup(k));
  }
}
BENCHMARK(BM_BPlusTreeLookup);

void BM_BinarySearchLookup(benchmark::State& state) {
  Fixture* f = Fixture::Get();
  std::size_t i = 0;
  for (auto _ : state) {
    const Key k = f->probe_keys[i++ % f->probe_keys.size()];
    benchmark::DoNotOptimize(f->binary->Lookup(k));
  }
}
BENCHMARK(BM_BinarySearchLookup);

}  // namespace
}  // namespace lispoison

BENCHMARK_MAIN();
