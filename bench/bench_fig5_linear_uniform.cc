// Reproduces Figure 5: multi-point poisoning of a linear regression on
// the CDF of uniformly distributed keys. Grid of (Keys x Density), each
// cell sweeping the poisoning percentage and printing a boxplot of the
// Ratio Loss over independent keysets.
//
// Flags: --keys=100,1000,10000 --densities=0.2,0.5,0.8
//        --pcts=2,4,6,8,10,12,14 --trials=20 --seed=S --csv --quick

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "eval/experiments.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  LinearGridConfig config;
  config.key_counts = flags.GetIntList("keys", {100, 1000, 10000});
  config.densities = flags.GetDoubleList("densities", {0.2, 0.5, 0.8});
  config.poison_pcts = flags.GetDoubleList("pcts", {2, 4, 6, 8, 10, 12, 14});
  config.trials = flags.GetInt("trials", 20);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.distribution = KeyDistribution::kUniform;
  if (flags.GetBool("quick")) {
    config.key_counts = {100, 1000};
    config.trials = 5;
  }

  std::printf("=== Figure 5: poisoning linear regression on uniform CDFs "
              "===\n");
  std::printf("Ratio Loss = MSE(K ∪ P) / MSE(K); boxplots over %lld "
              "keysets per cell\n\n",
              static_cast<long long>(config.trials));

  auto cells_or = RunLinearPoisonGrid(config);
  if (!cells_or.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 cells_or.status().ToString().c_str());
    return 1;
  }

  TextTable table;
  table.SetHeader({"keys", "density", "key domain", "poison%", "min", "q1",
                   "median", "q3", "max", "mean"});
  for (const auto& cell : *cells_or) {
    table.AddRow({TextTable::Fmt(cell.keys),
                  TextTable::Fmt(cell.density, 2),
                  TextTable::Fmt(cell.key_domain),
                  TextTable::Fmt(cell.poison_pct, 3),
                  TextTable::Fmt(cell.ratio_loss.min, 4),
                  TextTable::Fmt(cell.ratio_loss.q1, 4),
                  TextTable::Fmt(cell.ratio_loss.median, 4),
                  TextTable::Fmt(cell.ratio_loss.q3, 4),
                  TextTable::Fmt(cell.ratio_loss.max, 4),
                  TextTable::Fmt(cell.ratio_loss.mean, 4)});
  }
  if (flags.GetBool("csv")) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf(
      "\nExpected shape (paper): ratio rises with poison%%; large sparse\n"
      "domains reach ~100x, dense small domains stay low because the CDF\n"
      "is already near-linear and leaves few free candidate keys.\n");
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
