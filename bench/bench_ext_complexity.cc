// Extension experiment (§VI discussion): "future learned index
// structures may choose more complex final-stage models, which
// negatively affects the storage overhead". Quantifies the trade:
// second-stage polynomial degree 1..4 vs the Algorithm-1 attack —
// post-attack ratio loss, stored parameters, and prediction cost.
//
// Flags: --keys=500 --pct=10 --trials=10 --seed=S

#include <cstdio>
#include <iostream>

#include "attack/greedy_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "data/generators.h"
#include "index/polynomial_regression.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 500);
  const double pct = flags.GetDouble("pct", 10);
  const std::int64_t trials = flags.GetInt("trials", 10);
  Rng master(static_cast<std::uint64_t>(flags.GetInt("seed", 42)));
  const std::int64_t p =
      static_cast<std::int64_t>(static_cast<double>(n) * pct / 100.0);

  std::printf("=== Extension: second-stage model complexity as a defense "
              "===\n");
  std::printf("n=%lld uniform keys, %.0f%% poisoning designed against the "
              "LINEAR model, %lld trials\n\n",
              static_cast<long long>(n), pct,
              static_cast<long long>(trials));

  std::vector<std::vector<double>> ratios(5);
  std::vector<std::vector<double>> clean_mses(5);
  std::int64_t params[5] = {};
  for (std::int64_t t = 0; t < trials; ++t) {
    Rng rng = master.Fork(static_cast<std::uint64_t>(t));
    auto keyset_or = GenerateUniform(n, KeyDomain{0, 10 * n}, &rng);
    if (!keyset_or.ok()) return 1;
    auto attack = GreedyPoisonCdf(*keyset_or, p);
    if (!attack.ok()) return 1;
    auto poisoned = ApplyPoison(*keyset_or, attack->poison_keys);
    if (!poisoned.ok()) return 1;
    for (int degree = 1; degree <= 4; ++degree) {
      auto clean = FitPolynomialCdf(*keyset_or, degree);
      auto pois = FitPolynomialCdf(*poisoned, degree);
      if (!clean.ok() || !pois.ok()) return 1;
      ratios[static_cast<std::size_t>(degree)].push_back(
          clean->mse > 0 ? static_cast<double>(pois->mse / clean->mse)
                         : 1.0);
      clean_mses[static_cast<std::size_t>(degree)].push_back(
          static_cast<double>(clean->mse));
      params[degree] = clean->model.ParameterCount();
    }
  }

  TextTable table;
  table.SetHeader({"2nd-stage model", "params/model", "clean MSE (median)",
                   "post-attack ratio (median)", "ratio (max)"});
  const char* names[5] = {"", "linear (paper)", "quadratic", "cubic",
                          "quartic"};
  for (int degree = 1; degree <= 4; ++degree) {
    const auto box =
        ComputeBoxplot(ratios[static_cast<std::size_t>(degree)]);
    const auto clean_box =
        ComputeBoxplot(clean_mses[static_cast<std::size_t>(degree)]);
    table.AddRow({names[degree], TextTable::Fmt(params[degree]),
                  TextTable::Fmt(clean_box.median, 4),
                  TextTable::Fmt(box.median, 4),
                  TextTable::Fmt(box.max, 4)});
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: higher-degree second stages absorb part of an attack\n"
      "designed for the linear model, but (a) each model stores 2-3x the\n"
      "parameters — at the paper's 10^4-10^5 second-stage models that\n"
      "erases the storage advantage over B-Trees — and (b) the attack\n"
      "surface moves rather than disappears (the ratio stays > 1).\n");
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
