// Reproduces Figure 4: the greedy multi-point attack placing 10 poisoning
// keys into 90 uniformly distributed keys. The paper reports a 7.4x error
// increase and observes that the poisons cluster in dense areas of the
// CDF to exacerbate its non-linearity; this bench prints both.
//
// Flags: --keys=90 --poisons=10 --domain=450 --seed=S --trials=T

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "attack/greedy_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "data/generators.h"

namespace lispoison {
namespace {

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::int64_t n = flags.GetInt("keys", 90);
  const std::int64_t p = flags.GetInt("poisons", 10);
  const Key domain_hi = flags.GetInt("domain", 450) - 1;
  const std::int64_t trials = flags.GetInt("trials", 20);
  Rng master(static_cast<std::uint64_t>(flags.GetInt("seed", 7)));

  std::printf("=== Figure 4: greedy multi-point poisoning demo ===\n");
  std::printf("n=%lld uniform keys in [0, %lld], p=%lld poisons, "
              "%lld trials\n\n",
              static_cast<long long>(n), static_cast<long long>(domain_hi),
              static_cast<long long>(p), static_cast<long long>(trials));

  std::vector<double> ratios;
  GreedyPoisonResult showcase;
  KeySet showcase_keys;
  for (std::int64_t t = 0; t < trials; ++t) {
    Rng rng = master.Fork(static_cast<std::uint64_t>(t));
    auto keyset_or = GenerateUniform(n, KeyDomain{0, domain_hi}, &rng);
    if (!keyset_or.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   keyset_or.status().ToString().c_str());
      return 1;
    }
    auto attack_or = GreedyPoisonCdf(*keyset_or, p);
    if (!attack_or.ok()) {
      std::fprintf(stderr, "attack failed: %s\n",
                   attack_or.status().ToString().c_str());
      return 1;
    }
    ratios.push_back(attack_or->RatioLoss());
    if (t == 0) {
      showcase = *attack_or;
      showcase_keys = *keyset_or;
    }
  }

  const BoxplotSummary summary = ComputeBoxplot(ratios);
  std::printf("Ratio Loss over %lld trials: %s\n",
              static_cast<long long>(trials), summary.ToString().c_str());
  std::printf("(paper reports ~7.4x for this configuration)\n\n");

  // Showcase trial: where did the poisons land relative to key density?
  std::printf("--- Showcase trial (seed fork 0) ---\n");
  std::printf("base MSE %.4f -> poisoned MSE %.4f (ratio %.2fx)\n",
              static_cast<double>(showcase.base_loss),
              static_cast<double>(showcase.poisoned_loss),
              showcase.RatioLoss());
  std::vector<Key> poisons = showcase.poison_keys;
  std::sort(poisons.begin(), poisons.end());
  std::printf("poison keys (sorted): ");
  for (Key kp : poisons) std::printf("%lld ", static_cast<long long>(kp));
  std::printf("\n\n");

  // Density analysis: split the key range into quartile windows by
  // legitimate-key density and count poisons per window.
  TextTable table;
  table.SetHeader({"window", "range", "legit keys", "poison keys",
                   "poisons per legit"});
  const Key lo = showcase_keys.keys().front();
  const Key hi = showcase_keys.keys().back();
  const Key width = (hi - lo) / 4 + 1;
  for (int w = 0; w < 4; ++w) {
    const Key w_lo = lo + w * width;
    const Key w_hi = std::min<Key>(hi, w_lo + width - 1);
    std::int64_t legit = 0, pois = 0;
    for (Key k : showcase_keys.keys()) {
      if (k >= w_lo && k <= w_hi) ++legit;
    }
    for (Key k : poisons) {
      if (k >= w_lo && k <= w_hi) ++pois;
    }
    table.AddRow({TextTable::Fmt(static_cast<std::int64_t>(w)),
                  TextTable::Fmt(w_lo) + ".." + TextTable::Fmt(w_hi),
                  TextTable::Fmt(legit), TextTable::Fmt(pois),
                  TextTable::Fmt(legit ? static_cast<double>(pois) /
                                             static_cast<double>(legit)
                                       : 0.0,
                                 3)});
  }
  table.Print(std::cout);
  std::printf("\nLoss trajectory per inserted key:\n  ");
  for (const auto l : showcase.loss_trajectory) {
    std::printf("%.3f ", static_cast<double>(l));
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
