// End-to-end serving benchmark: what does a poisoned RMI cost a
// query-serving process? Runs every workload mix (read-only uniform,
// zipfian read-heavy, range scan, read/insert mix) against every backend
// (RMI, B+Tree, binary search) in clean and poisoned variants, and emits
// one JSON report with per-config p50/p95/p99 latency, throughput, and
// the exact work model — plus poisoned/clean comparison rows.
//
// The poisoned variant serves K ∪ P where P comes from PoisonRmi
// (Algorithm 2) at --poison-pct. The B+Tree and binary-search backends
// also serve the poisoned keyset: they are the controls whose cost is
// insensitive to the injected keys, isolating the learned index's
// vulnerability in the same report.
//
// Flags:
//   --keys=100000      legitimate keys n
//   --ops=200000       operations per configuration
//   --threads=0        driver shards (0 = hardware_concurrency)
//   --poison-pct=10    poisoning percentage φ·100
//   --model-size=500   keys per second-stage model
//   --seed=42
//   --out=serving_report.json
//   --sample-every=1   record latency for every k-th op (batched timing;
//                      work accounting is unaffected)
//   --compact-threshold=0  overlay size that triggers an overlay-into-
//                      base merge + substrate retrain (0 = never; the
//                      ROADMAP dynamic_index-style delta-merge knob for
//                      insert-heavy runs)
//   --smoke            capped CI configuration (small n/ops, 2 threads)

#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "attack/rmi_poisoner.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "data/generators.h"
#include "data/keyset.h"
#include "workload/query_driver.h"
#include "workload/search_backend.h"
#include "workload/serving_report.h"
#include "workload/workload.h"

namespace lispoison {
namespace {

struct Variant {
  const char* name;
  const KeySet* keyset;
};

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const bool smoke = flags.GetBool("smoke");
  const std::int64_t n = flags.GetInt("keys", smoke ? 20000 : 100000);
  const std::int64_t ops = flags.GetInt("ops", smoke ? 20000 : 200000);
  const int threads =
      static_cast<int>(flags.GetInt("threads", smoke ? 2 : 0));
  const double poison_pct = flags.GetDouble("poison-pct", 10.0);
  const std::int64_t model_size = flags.GetInt("model-size", 500);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::int64_t compact_threshold =
      flags.GetInt("compact-threshold", 0);
  const std::string out_path =
      flags.GetString("out", "serving_report.json");

  Rng rng(seed);
  auto clean_or = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  if (!clean_or.ok()) {
    std::fprintf(stderr, "keyset generation failed: %s\n",
                 clean_or.status().ToString().c_str());
    return 1;
  }
  const KeySet clean = *clean_or;

  std::printf("Poisoning %lld keys at %.1f%% (Algorithm 2)...\n",
              static_cast<long long>(n), poison_pct);
  RmiAttackOptions attack_opts;
  attack_opts.poison_fraction = poison_pct / 100.0;
  attack_opts.model_size = model_size;
  attack_opts.num_threads = threads;
  auto attack_or = PoisonRmi(clean, attack_opts);
  if (!attack_or.ok()) {
    std::fprintf(stderr, "RMI poisoning failed: %s\n",
                 attack_or.status().ToString().c_str());
    return 1;
  }
  auto poisoned_or = clean.Union(attack_or->AllPoisonKeys());
  if (!poisoned_or.ok()) {
    std::fprintf(stderr, "poisoned keyset union failed: %s\n",
                 poisoned_or.status().ToString().c_str());
    return 1;
  }
  const KeySet poisoned = *poisoned_or;
  std::printf("  placed %lld poison keys, attacker RMI ratio loss %.2f\n\n",
              static_cast<long long>(attack_or->total_poison_keys),
              attack_or->rmi_ratio_loss);

  ServingReport report;
  report.hardware_concurrency =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  report.num_threads = threads;
  report.ops_per_config = ops;
  report.poison_fraction = attack_opts.poison_fraction;

  const std::vector<WorkloadSpec> workloads = {
      ReadOnlyUniformWorkload(seed), ZipfianReadHeavyWorkload(seed),
      RangeScanWorkload(seed), ReadInsertMixWorkload(seed)};
  const std::vector<BackendKind> kinds = {
      BackendKind::kRmi, BackendKind::kBTree, BackendKind::kBinarySearch};
  const std::vector<Variant> variants = {{"clean", &clean},
                                         {"poisoned", &poisoned}};

  DriverOptions driver_opts;
  driver_opts.num_threads = threads;
  driver_opts.latency_sample_every = flags.GetInt("sample-every", 1);

  TextTable table;
  table.SetHeader({"workload", "backend", "variant", "ops/s", "p50 ns",
                   "p95 ns", "p99 ns", "mean work"});

  for (const WorkloadSpec& spec : workloads) {
    for (const Variant& variant : variants) {
      // Same seed against each variant's keyset: the same access shape
      // (rank skew, mix) over whichever keys that index actually serves.
      auto ops_or = GenerateOperations(spec, *variant.keyset, ops);
      if (!ops_or.ok()) {
        std::fprintf(stderr, "workload '%s' generation failed: %s\n",
                     spec.name.c_str(), ops_or.status().ToString().c_str());
        return 1;
      }
      for (const BackendKind kind : kinds) {
        BackendOptions backend_opts;
        backend_opts.rmi.target_model_size = model_size;
        backend_opts.compact_threshold = compact_threshold;
        // A fresh backend per run: insert mixes mutate the overlay.
        auto backend_or = CreateBackend(kind, *variant.keyset, backend_opts);
        if (!backend_or.ok()) {
          std::fprintf(stderr, "backend %s build failed: %s\n",
                       BackendKindName(kind),
                       backend_or.status().ToString().c_str());
          return 1;
        }
        auto result_or = RunWorkload(backend_or->get(), *ops_or, driver_opts);
        if (!result_or.ok()) {
          std::fprintf(stderr, "driver run failed: %s\n",
                       result_or.status().ToString().c_str());
          return 1;
        }
        ServingConfigResult config;
        config.workload = spec.name;
        config.backend = (*backend_or)->name();
        config.variant = variant.name;
        config.keys = variant.keyset->size();
        config.seed = seed;
        config.result = std::move(*result_or);
        table.AddRow({config.workload, config.backend, config.variant,
                      TextTable::Fmt(static_cast<std::int64_t>(
                          config.result.ThroughputOpsPerSec())),
                      TextTable::Fmt(config.result.latency.P50()),
                      TextTable::Fmt(config.result.latency.P95()),
                      TextTable::Fmt(config.result.latency.P99()),
                      TextTable::Fmt(config.result.MeanWork(), 2)});
        report.Add(std::move(config));
      }
    }
  }

  table.Print(std::cout);

  const Status st = report.WriteJsonFile(out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu configs)\n", out_path.c_str(),
              report.configs.size());
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
