// End-to-end serving benchmark: what does a poisoned RMI cost a
// query-serving process? Runs every workload mix (read-only uniform,
// zipfian read-heavy, range scan, read/insert mix) against every backend
// (RMI, B+Tree, binary search) in clean and poisoned variants, and emits
// one JSON report with per-config p50/p95/p99 latency, throughput, and
// the exact work model — plus poisoned/clean comparison rows.
//
// The poisoned variant serves K ∪ P where P comes from PoisonRmi
// (Algorithm 2) at --poison-pct. The B+Tree and binary-search backends
// also serve the poisoned keyset: they are the controls whose cost is
// insensitive to the injected keys, isolating the learned index's
// vulnerability in the same report.
//
// Flags:
//   --keys=100000      legitimate keys n
//   --ops=200000       operations per configuration
//   --threads=0        driver shards (0 = hardware_concurrency)
//   --poison-pct=10    poisoning percentage φ·100
//   --model-size=500   keys per second-stage model
//   --seed=42
//   --out=serving_report.json
//   --sample-every=1   record latency for every k-th op (batched timing;
//                      work accounting is unaffected)
//   --compact-threshold=0  overlay size that triggers an overlay-into-
//                      base merge + substrate retrain (0 = never; the
//                      ROADMAP dynamic_index-style delta-merge knob for
//                      insert-heavy runs)
//   --num-shards=1     key-range serving shards (matrix mode; the
//                      sharded smoke arms below always run at 4)
//   --read-group=1     batched read dispatch width (LookupBatch +
//                      prefetch); 1 = scalar dispatch
//   --sync-compaction  run compactions inline on inserting threads
//                      (escape hatch; default is the maintenance thread)
//   --smoke            capped CI configuration (small n/ops, 2 threads)
//   --telemetry-interval-ms=0  background sampling period for the
//                      report's time_series section; 0 keeps the
//                      sampler boundary-driven (one forced interval
//                      after poisoning and after every config), which
//                      is the deterministic row count CI gates
//   --trace-out=PATH   write a Chrome trace_event JSON (chrome://tracing
//                      / ui.perfetto.dev) of the run's spans: compaction
//                      causes, driver runs, attack rounds. Empty = off.
//
// Adversarial mode: --adversarial switches to the adversary-in-the-loop
// study (the §V threat model end to end). Two arms on the same sharded
// async-compaction RMI backend and the same zipfian read-heavy driver
// stream: a clean baseline, then a run where the online adversary
// (workload/adversary.h) constructs its insert/delete/modify stream
// with the incremental loss landscapes and replays it through the live
// write path on a dedicated thread — racing the driver, overlay
// growth, compactions, and retrains, and replanning whenever it
// observes a retrain. The report (--out, default BENCH_adversarial.json)
// carries per-interval poisoning-ROI rows (p99 degradation per attacker
// op over the telemetry time series) gated by
// tools/check_bench_json.py --adversarial. Extra knobs:
//   --adv-ops=2400       attack ops (smoke: 300)
//   --adv-delete-frac=0.15 / --adv-modify-frac=0.15
//   --adv-pace-ns=100000 sleep between attack ops, spreading the stream
//                        across the serving window
//   --fault-plan=SEED    adds the degraded-mode arm (ISSUE 10): the same
//                        streams against a backend whose rebuild path is
//                        fault-armed (seeded FaultPlan) into maintenance
//                        collapse, with the overlay hard cap shedding
//                        inserts. 0 (default) skips the arm. The gate
//                        checks reads stayed available, sheds telescope
//                        (backend == driver + adversary), and every
//                        shard recovered after the storm.
//
// Scaling mode: --threads-sweep=1,2,4[,...] switches to the multi-core
// scaling study instead of the clean-vs-poisoned matrix. For each
// thread count it replays the same read-only stream against a fresh
// sharded RMI backend (reads/sec, p50/p99), then runs the insert-heavy
// mix twice — async and sync compaction — recording the compaction
// counters and insert latency histograms. Output (--out, default
// BENCH_serving_scaling.json) is the committed curve that
// tools/check_bench_json.py --serving-scaling gates.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "attack/rmi_poisoner.h"
#include "common/fault.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "data/generators.h"
#include "data/keyset.h"
#include "workload/adversary.h"
#include "workload/query_driver.h"
#include "workload/search_backend.h"
#include "workload/serving_report.h"
#include "workload/workload.h"

namespace lispoison {
namespace {

struct Variant {
  const char* name;
  const KeySet* keyset;
};

/// The multi-core scaling study (--threads-sweep): read throughput per
/// driver thread count on the sharded backend plus the async-vs-sync
/// insert arms. Emits the ScalingReport JSON the tier-1 golden gate
/// checks.
int RunScaling(const FlagParser& flags, std::vector<std::int64_t> sweep) {
  const bool smoke = flags.GetBool("smoke");
  const std::int64_t n = flags.GetInt("keys", smoke ? 20000 : 100000);
  const std::int64_t ops = flags.GetInt("ops", smoke ? 20000 : 200000);
  const std::int64_t model_size = flags.GetInt("model-size", 500);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::int64_t compact_threshold =
      flags.GetInt("compact-threshold", 512);
  const int read_group =
      static_cast<int>(flags.GetInt("read-group", 16));
  const std::string out_path =
      flags.GetString("out", "BENCH_serving_scaling.json");

  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
  if (sweep.empty() || sweep.front() < 1) {
    std::fprintf(stderr, "--threads-sweep needs positive thread counts\n");
    return 1;
  }
  const int max_threads = static_cast<int>(sweep.back());
  // Shard per core (well, per swept thread) unless pinned explicitly.
  int num_shards = static_cast<int>(flags.GetInt("num-shards", 0));
  if (num_shards <= 0) num_shards = max_threads;

  Rng rng(seed);
  auto clean_or = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  if (!clean_or.ok()) {
    std::fprintf(stderr, "keyset generation failed: %s\n",
                 clean_or.status().ToString().c_str());
    return 1;
  }
  const KeySet clean = *clean_or;

  ScalingReport report;
  report.hardware_concurrency =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  report.keys = n;
  report.ops = ops;
  report.num_shards = num_shards;
  report.read_group = read_group;
  report.compact_threshold = compact_threshold;
  report.seed = seed;

  const WorkloadSpec read_spec = ReadOnlyUniformWorkload(seed);
  const WorkloadSpec insert_spec = InsertHeavyWorkload(seed);
  report.read_workload = read_spec.name;
  report.insert_workload = insert_spec.name;

  auto read_ops_or = GenerateOperations(read_spec, clean, ops);
  if (!read_ops_or.ok()) {
    std::fprintf(stderr, "read workload generation failed: %s\n",
                 read_ops_or.status().ToString().c_str());
    return 1;
  }

  TextTable table;
  table.SetHeader({"threads", "reads/s", "p50 ns", "p99 ns"});
  for (const std::int64_t t : sweep) {
    BackendOptions backend_opts;
    backend_opts.rmi.target_model_size = model_size;
    backend_opts.num_shards = num_shards;
    auto backend_or = CreateBackend(BackendKind::kRmi, clean, backend_opts);
    if (!backend_or.ok()) {
      std::fprintf(stderr, "backend build failed: %s\n",
                   backend_or.status().ToString().c_str());
      return 1;
    }
    DriverOptions driver_opts;
    driver_opts.num_threads = static_cast<int>(t);
    driver_opts.read_group = read_group;
    driver_opts.latency_sample_every = flags.GetInt("sample-every", 1);
    auto result_or = RunWorkload(backend_or->get(), *read_ops_or, driver_opts);
    if (!result_or.ok()) {
      std::fprintf(stderr, "driver run failed: %s\n",
                   result_or.status().ToString().c_str());
      return 1;
    }
    ScalingRow row;
    row.threads = static_cast<int>(t);
    row.result = std::move(*result_or);
    table.AddRow({TextTable::Fmt(static_cast<std::int64_t>(t)),
                  TextTable::Fmt(static_cast<std::int64_t>(
                      row.result.ThroughputOpsPerSec())),
                  TextTable::Fmt(row.result.read_latency.P50()),
                  TextTable::Fmt(row.result.read_latency.P99())});
    report.read_rows.push_back(std::move(row));
  }
  table.Print(std::cout);

  // Insert arms at the top swept thread count: the same insert-heavy
  // stream against async (maintenance-thread) and sync (inline)
  // compaction. The committed counters prove no async insert ever paid
  // a retrain; the sync arm is the cost of NOT having the maintenance
  // thread.
  auto insert_ops_or = GenerateOperations(insert_spec, clean, ops);
  if (!insert_ops_or.ok()) {
    std::fprintf(stderr, "insert workload generation failed: %s\n",
                 insert_ops_or.status().ToString().c_str());
    return 1;
  }
  for (const bool sync : {false, true}) {
    BackendOptions backend_opts;
    backend_opts.rmi.target_model_size = model_size;
    backend_opts.num_shards = num_shards;
    backend_opts.compact_threshold = compact_threshold;
    backend_opts.sync_compaction = sync;
    auto backend_or = CreateBackend(BackendKind::kRmi, clean, backend_opts);
    if (!backend_or.ok()) {
      std::fprintf(stderr, "backend build failed: %s\n",
                   backend_or.status().ToString().c_str());
      return 1;
    }
    DriverOptions driver_opts;
    driver_opts.num_threads = max_threads;
    driver_opts.read_group = read_group;
    auto result_or =
        RunWorkload(backend_or->get(), *insert_ops_or, driver_opts);
    if (!result_or.ok()) {
      std::fprintf(stderr, "insert arm failed: %s\n",
                   result_or.status().ToString().c_str());
      return 1;
    }
    (*backend_or)->WaitForMaintenance();
    InsertArmResult arm;
    arm.mode = sync ? "sync" : "async";
    arm.threads = max_threads;
    arm.compactions = (*backend_or)->compactions();
    arm.inline_compactions = (*backend_or)->inline_compactions();
    arm.max_publish_overlay = (*backend_or)->max_publish_overlay();
    arm.result = std::move(*result_or);
    std::printf(
        "insert arm %-5s: %lld compactions (%lld inline), max insert "
        "%lld ns, max publish overlay %lld\n",
        arm.mode.c_str(), static_cast<long long>(arm.compactions),
        static_cast<long long>(arm.inline_compactions),
        static_cast<long long>(arm.result.insert_latency.max()),
        static_cast<long long>(arm.max_publish_overlay));
    report.insert_arms.push_back(std::move(arm));
  }

  const Status st = report.WriteJsonFile(out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu thread counts, %zu insert arms)\n",
              out_path.c_str(), report.read_rows.size(),
              report.insert_arms.size());
  return 0;
}

/// The adversary-in-the-loop study (--adversarial): clean baseline arm,
/// then the same driver stream with the online attacker racing it
/// through the live write path. Emits the AdversarialReport JSON the
/// tier-1 --adversarial golden gate checks.
int RunAdversarial(const FlagParser& flags) {
  const bool smoke = flags.GetBool("smoke");
  const std::int64_t n = flags.GetInt("keys", smoke ? 20000 : 100000);
  const std::int64_t ops = flags.GetInt("ops", smoke ? 60000 : 400000);
  int threads = static_cast<int>(flags.GetInt("threads", 2));
  if (threads < 2) threads = 2;  // The committed contract: the attacker
                                 // races >= 2 legitimate driver threads.
  const std::int64_t model_size = flags.GetInt("model-size", 500);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::int64_t compact_threshold =
      flags.GetInt("compact-threshold", 512);
  const int num_shards =
      static_cast<int>(flags.GetInt("num-shards", smoke ? 2 : 4));
  const int read_group = static_cast<int>(flags.GetInt("read-group", 16));
  const std::int64_t interval_ms =
      flags.GetInt("telemetry-interval-ms", smoke ? 10 : 25);
  const std::string out_path =
      flags.GetString("out", "BENCH_adversarial.json");

  AdversaryOptions adv;
  adv.ops = flags.GetInt("adv-ops", smoke ? 300 : 2400);
  adv.delete_fraction = flags.GetDouble("adv-delete-frac", 0.15);
  adv.modify_fraction = flags.GetDouble("adv-modify-frac", 0.15);
  adv.model_size = model_size;
  adv.pace_ns = flags.GetInt("adv-pace-ns", 100000);
  adv.seed = seed + 1;

  Rng rng(seed);
  auto clean_or = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  if (!clean_or.ok()) {
    std::fprintf(stderr, "keyset generation failed: %s\n",
                 clean_or.status().ToString().c_str());
    return 1;
  }
  const KeySet clean = *clean_or;

  const WorkloadSpec spec = ZipfianReadHeavyWorkload(seed);
  auto ops_or = GenerateOperations(spec, clean, ops);
  if (!ops_or.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 ops_or.status().ToString().c_str());
    return 1;
  }

  AdversarialReport report;
  report.hardware_concurrency =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  report.keys = n;
  report.ops = ops;
  report.num_threads = threads;
  report.num_shards = num_shards;
  report.read_group = read_group;
  report.compact_threshold = compact_threshold;
  report.sync_compaction = false;  // No escape hatch in this study.
  report.seed = seed;
  report.workload = spec.name;
  report.telemetry_interval_ms = interval_ms;

  BackendOptions backend_opts;
  backend_opts.rmi.target_model_size = model_size;
  backend_opts.num_shards = num_shards;
  backend_opts.compact_threshold = compact_threshold;
  backend_opts.sync_compaction = false;

  DriverOptions driver_opts;
  driver_opts.num_threads = threads;
  driver_opts.read_group = read_group;
  driver_opts.latency_sample_every = flags.GetInt("sample-every", 1);

  // Arm 1 — clean baseline: same backend config, same driver stream,
  // no attacker. Its read p99 is the ROI denominator.
  {
    auto backend_or = CreateBackend(BackendKind::kRmi, clean, backend_opts);
    if (!backend_or.ok()) {
      std::fprintf(stderr, "clean backend build failed: %s\n",
                   backend_or.status().ToString().c_str());
      return 1;
    }
    auto result_or = RunWorkload(backend_or->get(), *ops_or, driver_opts);
    if (!result_or.ok()) {
      std::fprintf(stderr, "clean arm failed: %s\n",
                   result_or.status().ToString().c_str());
      return 1;
    }
    (*backend_or)->WaitForMaintenance();
    report.clean_result = std::move(*result_or);
    report.clean_compactions = (*backend_or)->compactions();
  }

  // Arm 2 — adversary in the loop: fresh backend, sampler baselined at
  // the attack window's start, attacker on its own thread racing the
  // driver. Every interval row (and the totals it telescopes to) spans
  // exactly this window.
  {
    auto backend_or = CreateBackend(BackendKind::kRmi, clean, backend_opts);
    if (!backend_or.ok()) {
      std::fprintf(stderr, "attacked backend build failed: %s\n",
                   backend_or.status().ToString().c_str());
      return 1;
    }
    SearchBackend* backend = backend_or->get();

    TelemetrySampler sampler;
    sampler.Start(interval_ms);

    Result<AdversaryResult> adv_result = AdversaryResult{};
    std::thread attacker([&] {
      adv_result = RunOnlineAdversary(backend, clean, adv);
    });
    auto result_or = RunWorkload(backend, *ops_or, driver_opts);
    attacker.join();
    backend->WaitForMaintenance();
    sampler.SampleNow();  // Close the tail interval before stopping.
    sampler.Stop();

    if (!result_or.ok()) {
      std::fprintf(stderr, "attacked arm failed: %s\n",
                   result_or.status().ToString().c_str());
      return 1;
    }
    if (!adv_result.ok()) {
      std::fprintf(stderr, "adversary failed: %s\n",
                   adv_result.status().ToString().c_str());
      return 1;
    }
    report.attacked_result = std::move(*result_or);
    report.adversary = std::move(*adv_result);
    report.attacked_compactions = backend->compactions();
    report.attacked_inline_compactions = backend->inline_compactions();
    report.time_series = sampler.Rows();
    report.telemetry_totals = sampler.TotalsSinceStart();
    for (const auto& c : report.telemetry_totals.counters) {
      if (c.name == "serving.rebuild_failures") {
        report.attacked_rebuild_failures = c.value;
      }
    }
  }
  report.BuildRoiRows();

  // Arm 3 (--fault-plan=SEED) — maintenance collapse: every substrate
  // rebuild fails while the plan is armed, so compactions retry, back
  // off, and give up; overlays grow to the hard cap; shards go degraded
  // and shed inserts. Reads must ride through untouched (lock-free
  // path), and once the storm is disarmed the shards must recover.
  const std::uint64_t fault_seed =
      static_cast<std::uint64_t>(flags.GetInt("fault-plan", 0));
  if (fault_seed != 0) {
    BackendOptions degraded_opts = backend_opts;
    // A tight threshold/cap pair so the collapse actually bites within
    // the smoke window: the cap is what bounds per-insert publish cost
    // (and read-path overlay probes) while maintenance is down.
    degraded_opts.compact_threshold =
        std::max<std::int64_t>(64, compact_threshold / 8);
    degraded_opts.overlay_hard_cap = 2 * degraded_opts.compact_threshold;
    degraded_opts.compaction_max_retries = 2;
    degraded_opts.compaction_backoff_base_us = 200;
    degraded_opts.compaction_backoff_max_us = 5000;
    degraded_opts.watchdog_stall_ms = 100;
    auto backend_or = CreateBackend(BackendKind::kRmi, clean, degraded_opts);
    if (!backend_or.ok()) {
      std::fprintf(stderr, "degraded backend build failed: %s\n",
                   backend_or.status().ToString().c_str());
      return 1;
    }
    SearchBackend* backend = backend_or->get();

    FaultSpec rebuild_storm;
    rebuild_storm.probability = 1.0;  // Total maintenance collapse.
    FaultSpec pool_wedge;
    pool_wedge.probability = 0.3;
    pool_wedge.latency_ns = 5'000'000;  // 5ms dequeue-to-run wedges.
    pool_wedge.fail = false;
    FaultPlan(fault_seed)
        .Arm("compaction.rebuild", rebuild_storm)
        .Arm("pool.task", pool_wedge)
        .Activate();

    DriverOptions degraded_driver_opts = driver_opts;
    degraded_driver_opts.maintenance_deadline_ms = 50;

    Result<AdversaryResult> adv_result = AdversaryResult{};
    std::thread attacker([&] {
      adv_result = RunOnlineAdversary(backend, clean, adv);
    });
    auto result_or = RunWorkload(backend, *ops_or, degraded_driver_opts);
    attacker.join();
    backend->WaitForMaintenance();
    FaultRegistry::Global().DisarmAll();
    if (!result_or.ok()) {
      std::fprintf(stderr, "degraded arm failed: %s\n",
                   result_or.status().ToString().c_str());
      return 1;
    }
    if (!adv_result.ok()) {
      std::fprintf(stderr, "degraded-arm adversary failed: %s\n",
                   adv_result.status().ToString().c_str());
      return 1;
    }

    auto& d = report.degraded;
    d.present = true;
    d.fault_seed = fault_seed;
    d.overlay_hard_cap = degraded_opts.overlay_hard_cap;
    d.compact_threshold = degraded_opts.compact_threshold;
    d.result = std::move(*result_or);
    d.driver_inserts_shed = d.result.inserts_shed;
    d.maintenance_deadline_hits = d.result.maintenance_deadline_hits;
    d.adversary = std::move(*adv_result);
    // Snapshot the accounting identity BEFORE the recovery drain so
    // the committed counters describe the storm alone, not the
    // cleanup after it.
    d.shed_inserts = backend->shed_inserts();
    d.rebuild_retries = backend->rebuild_retries();
    d.compaction_giveups = backend->compaction_giveups();
    // Every failed rebuild attempt either retried or gave the pass up,
    // so the failure total is exactly the sum of the two.
    d.rebuild_failures = d.rebuild_retries + d.compaction_giveups;
    d.compactions = backend->compactions();

    // Recovery drain: with the plan disarmed, compactions succeed
    // again, but a degraded shard whose traffic stopped has nothing
    // left to re-kick it (the give-up cleared the in-flight flag) —
    // KickDegradedShards is the operational primitive for exactly
    // that state.
    for (int round = 0; round < 100 && backend->degraded_shards() > 0;
         ++round) {
      backend->KickDegradedShards();
      backend->WaitForMaintenance();
    }
    d.degraded_shards_end = backend->degraded_shards();

    std::printf(
        "degraded arm (fault plan %llu): %lld sheds "
        "(%lld driver + %lld adversary), %lld retries, %lld give-ups, "
        "%lld deadline hits, degraded shards at end %lld\n",
        static_cast<unsigned long long>(fault_seed),
        static_cast<long long>(d.shed_inserts),
        static_cast<long long>(d.driver_inserts_shed),
        static_cast<long long>(d.adversary.shed),
        static_cast<long long>(d.rebuild_retries),
        static_cast<long long>(d.compaction_giveups),
        static_cast<long long>(d.maintenance_deadline_hits),
        static_cast<long long>(d.degraded_shards_end));
  }

  const double p99_ratio =
      report.clean_result.read_latency.P99() > 0
          ? static_cast<double>(report.attacked_result.read_latency.P99()) /
                static_cast<double>(report.clean_result.read_latency.P99())
          : 0.0;
  std::printf(
      "adversarial: %lld attack ops (%lld ins / %lld del / %lld mod, "
      "%lld rejected), %lld replans after %lld observed retrains\n"
      "  clean read p99 %lld ns -> attacked %lld ns (%.2fx), "
      "work/op %.2f -> %.2f, %lld compactions in window\n",
      static_cast<long long>(report.adversary.ops_planned),
      static_cast<long long>(report.adversary.inserts),
      static_cast<long long>(report.adversary.deletes),
      static_cast<long long>(report.adversary.modifies),
      static_cast<long long>(report.adversary.rejected),
      static_cast<long long>(report.adversary.replans),
      static_cast<long long>(report.adversary.retrains_observed),
      static_cast<long long>(report.clean_result.read_latency.P99()),
      static_cast<long long>(report.attacked_result.read_latency.P99()),
      p99_ratio, report.clean_result.MeanWork(),
      report.attacked_result.MeanWork(),
      static_cast<long long>(report.attacked_compactions));

  const Status st = report.WriteJsonFile(out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu roi rows)\n", out_path.c_str(),
              report.roi_rows.size());
  return 0;
}

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  const std::vector<std::int64_t> sweep = flags.GetIntList("threads-sweep", {});
  if (!sweep.empty()) return RunScaling(flags, sweep);
  if (flags.GetBool("adversarial")) return RunAdversarial(flags);

  const bool smoke = flags.GetBool("smoke");
  const std::int64_t n = flags.GetInt("keys", smoke ? 20000 : 100000);
  const std::int64_t ops = flags.GetInt("ops", smoke ? 20000 : 200000);
  const int threads =
      static_cast<int>(flags.GetInt("threads", smoke ? 2 : 0));
  const double poison_pct = flags.GetDouble("poison-pct", 10.0);
  const std::int64_t model_size = flags.GetInt("model-size", 500);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  const std::int64_t compact_threshold =
      flags.GetInt("compact-threshold", 0);
  const std::string out_path =
      flags.GetString("out", "serving_report.json");
  const std::int64_t telemetry_interval_ms =
      flags.GetInt("telemetry-interval-ms", 0);
  const std::string trace_out = flags.GetString("trace-out", "");

  // Telemetry rides the whole run: the sampler baselines before the
  // attack so the poisoning phase lands in the first interval row, and
  // every config boundary forces a row (deterministic even at interval
  // 0, which is what the committed smoke JSON gates).
  if (!trace_out.empty()) TraceSession::Global().Start();
  TelemetrySampler sampler;
  sampler.Start(telemetry_interval_ms);

  Rng rng(seed);
  auto clean_or = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
  if (!clean_or.ok()) {
    std::fprintf(stderr, "keyset generation failed: %s\n",
                 clean_or.status().ToString().c_str());
    return 1;
  }
  const KeySet clean = *clean_or;

  std::printf("Poisoning %lld keys at %.1f%% (Algorithm 2)...\n",
              static_cast<long long>(n), poison_pct);
  RmiAttackOptions attack_opts;
  attack_opts.poison_fraction = poison_pct / 100.0;
  attack_opts.model_size = model_size;
  attack_opts.num_threads = threads;
  auto attack_or = PoisonRmi(clean, attack_opts);
  if (!attack_or.ok()) {
    std::fprintf(stderr, "RMI poisoning failed: %s\n",
                 attack_or.status().ToString().c_str());
    return 1;
  }
  auto poisoned_or = clean.Union(attack_or->AllPoisonKeys());
  if (!poisoned_or.ok()) {
    std::fprintf(stderr, "poisoned keyset union failed: %s\n",
                 poisoned_or.status().ToString().c_str());
    return 1;
  }
  const KeySet poisoned = *poisoned_or;
  std::printf("  placed %lld poison keys, attacker RMI ratio loss %.2f\n\n",
              static_cast<long long>(attack_or->total_poison_keys),
              attack_or->rmi_ratio_loss);
  sampler.SampleNow();  // Interval boundary: the attack phase's row.

  ServingReport report;
  report.hardware_concurrency =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  report.num_threads = threads;
  report.ops_per_config = ops;
  report.poison_fraction = attack_opts.poison_fraction;

  const std::vector<WorkloadSpec> workloads = {
      ReadOnlyUniformWorkload(seed), ZipfianReadHeavyWorkload(seed),
      RangeScanWorkload(seed), ReadInsertMixWorkload(seed)};
  const std::vector<BackendKind> kinds = {
      BackendKind::kRmi, BackendKind::kBTree, BackendKind::kBinarySearch};
  const std::vector<Variant> variants = {{"clean", &clean},
                                         {"poisoned", &poisoned}};

  const int num_shards = static_cast<int>(flags.GetInt("num-shards", 1));
  const bool sync_compaction = flags.GetBool("sync-compaction");

  DriverOptions driver_opts;
  driver_opts.num_threads = threads;
  driver_opts.latency_sample_every = flags.GetInt("sample-every", 1);
  driver_opts.read_group = static_cast<int>(flags.GetInt("read-group", 1));

  TextTable table;
  table.SetHeader({"workload", "backend", "variant", "ops/s", "p50 ns",
                   "p95 ns", "p99 ns", "mean work"});

  for (const WorkloadSpec& spec : workloads) {
    for (const Variant& variant : variants) {
      // Same seed against each variant's keyset: the same access shape
      // (rank skew, mix) over whichever keys that index actually serves.
      auto ops_or = GenerateOperations(spec, *variant.keyset, ops);
      if (!ops_or.ok()) {
        std::fprintf(stderr, "workload '%s' generation failed: %s\n",
                     spec.name.c_str(), ops_or.status().ToString().c_str());
        return 1;
      }
      for (const BackendKind kind : kinds) {
        BackendOptions backend_opts;
        backend_opts.rmi.target_model_size = model_size;
        backend_opts.compact_threshold = compact_threshold;
        backend_opts.num_shards = num_shards;
        backend_opts.sync_compaction = sync_compaction;
        // A fresh backend per run: insert mixes mutate the overlay.
        auto backend_or = CreateBackend(kind, *variant.keyset, backend_opts);
        if (!backend_or.ok()) {
          std::fprintf(stderr, "backend %s build failed: %s\n",
                       BackendKindName(kind),
                       backend_or.status().ToString().c_str());
          return 1;
        }
        auto result_or = RunWorkload(backend_or->get(), *ops_or, driver_opts);
        if (!result_or.ok()) {
          std::fprintf(stderr, "driver run failed: %s\n",
                       result_or.status().ToString().c_str());
          return 1;
        }
        (*backend_or)->WaitForMaintenance();
        ServingConfigResult config;
        config.workload = spec.name;
        config.backend = (*backend_or)->name();
        config.variant = variant.name;
        config.keys = variant.keyset->size();
        config.seed = seed;
        config.num_shards = (*backend_or)->num_shards();
        config.result = std::move(*result_or);
        table.AddRow({config.workload, config.backend, config.variant,
                      TextTable::Fmt(static_cast<std::int64_t>(
                          config.result.ThroughputOpsPerSec())),
                      TextTable::Fmt(config.result.latency.P50()),
                      TextTable::Fmt(config.result.latency.P95()),
                      TextTable::Fmt(config.result.latency.P99()),
                      TextTable::Fmt(config.result.MeanWork(), 2)});
        report.Add(std::move(config));
        sampler.SampleNow();  // One time-series row per config.
      }
    }
  }

  // Sharded arms: the read-only workload against the 4-shard RMI in
  // both variants, riding in the same report (tools/bench_compare.py
  // names them workload/backend/variant/s4). Only added when the main
  // matrix ran unsharded — a sharded matrix would duplicate them.
  if (num_shards == 1) {
    const WorkloadSpec shard_spec = ReadOnlyUniformWorkload(seed);
    for (const Variant& variant : variants) {
      auto ops_or = GenerateOperations(shard_spec, *variant.keyset, ops);
      if (!ops_or.ok()) {
        std::fprintf(stderr, "workload '%s' generation failed: %s\n",
                     shard_spec.name.c_str(),
                     ops_or.status().ToString().c_str());
        return 1;
      }
      BackendOptions backend_opts;
      backend_opts.rmi.target_model_size = model_size;
      backend_opts.num_shards = 4;
      auto backend_or =
          CreateBackend(BackendKind::kRmi, *variant.keyset, backend_opts);
      if (!backend_or.ok()) {
        std::fprintf(stderr, "sharded backend build failed: %s\n",
                     backend_or.status().ToString().c_str());
        return 1;
      }
      auto result_or = RunWorkload(backend_or->get(), *ops_or, driver_opts);
      if (!result_or.ok()) {
        std::fprintf(stderr, "sharded driver run failed: %s\n",
                     result_or.status().ToString().c_str());
        return 1;
      }
      ServingConfigResult config;
      config.workload = shard_spec.name;
      config.backend = (*backend_or)->name();
      config.variant = variant.name;
      config.keys = variant.keyset->size();
      config.seed = seed;
      config.num_shards = (*backend_or)->num_shards();
      config.result = std::move(*result_or);
      table.AddRow({config.workload + "/s4", config.backend, config.variant,
                    TextTable::Fmt(static_cast<std::int64_t>(
                        config.result.ThroughputOpsPerSec())),
                    TextTable::Fmt(config.result.latency.P50()),
                    TextTable::Fmt(config.result.latency.P95()),
                    TextTable::Fmt(config.result.latency.P99()),
                    TextTable::Fmt(config.result.MeanWork(), 2)});
      report.Add(std::move(config));
      sampler.SampleNow();
    }
  }

  table.Print(std::cout);

  // Telemetry-overhead arms: the same read-only stream against the same
  // RMI backend, first with telemetry recording hot, then with the
  // runtime kill switch off (one relaxed load per Record and nothing
  // else — the LISPOISON_TELEMETRY_DISABLED build removes even that;
  // tests/telemetry_disabled_test.cc covers the compiled-out contract).
  // Work/op is identical by construction (telemetry never touches the
  // work model), which the committed JSON pins at ratio 1.0; the
  // throughput ratio bounds the wall-clock cost of the hot path's
  // relaxed fetch_adds.
  {
    const WorkloadSpec overhead_spec = ReadOnlyUniformWorkload(seed);
    auto ops_or = GenerateOperations(overhead_spec, clean, ops);
    if (!ops_or.ok()) {
      std::fprintf(stderr, "overhead workload generation failed: %s\n",
                   ops_or.status().ToString().c_str());
      return 1;
    }
    BackendOptions backend_opts;
    backend_opts.rmi.target_model_size = model_size;
    auto backend_or = CreateBackend(BackendKind::kRmi, clean, backend_opts);
    if (!backend_or.ok()) {
      std::fprintf(stderr, "overhead backend build failed: %s\n",
                   backend_or.status().ToString().c_str());
      return 1;
    }
    report.telemetry_overhead.present = true;
    report.telemetry_overhead.workload = overhead_spec.name;
    report.telemetry_overhead.backend = (*backend_or)->name();
    // No per-op timing in the overhead arms: the two steady_clock reads
    // per op cost more than the telemetry fetch_add being measured, so
    // timing would drown the signal the throughput ratio is after.
    DriverOptions overhead_opts = driver_opts;
    overhead_opts.measure_latency = false;
    for (const bool enabled : {true, false}) {
      TelemetryRegistry::Global().SetEnabled(enabled);
      auto result_or =
          RunWorkload(backend_or->get(), *ops_or, overhead_opts);
      if (!result_or.ok()) {
        TelemetryRegistry::Global().SetEnabled(true);
        std::fprintf(stderr, "overhead arm failed: %s\n",
                     result_or.status().ToString().c_str());
        return 1;
      }
      (enabled ? report.telemetry_overhead.enabled_arm
               : report.telemetry_overhead.disabled_arm) =
          std::move(*result_or);
    }
    TelemetryRegistry::Global().SetEnabled(true);
    std::printf(
        "telemetry overhead: mean work %.2f (hot) vs %.2f (off), "
        "throughput ratio %.3f\n",
        report.telemetry_overhead.enabled_arm.MeanWork(),
        report.telemetry_overhead.disabled_arm.MeanWork(),
        report.telemetry_overhead.disabled_arm.ThroughputOpsPerSec() > 0
            ? report.telemetry_overhead.enabled_arm.ThroughputOpsPerSec() /
                  report.telemetry_overhead.disabled_arm.ThroughputOpsPerSec()
            : 0.0);
  }

  // Final boundary, then freeze the rows and the totals they sum to.
  // Nothing records between Stop() and TotalsSinceStart(), so the
  // counter/histogram identity the JSON gate checks holds exactly.
  sampler.Stop();
  report.has_telemetry = true;
  report.telemetry_interval_ms = telemetry_interval_ms;
  report.time_series = sampler.Rows();
  report.telemetry_totals = sampler.TotalsSinceStart();

  if (!trace_out.empty()) {
    TraceSession::Global().Stop();
    const Status trace_st = TraceSession::Global().WriteJsonFile(trace_out);
    if (!trace_st.ok()) {
      std::fprintf(stderr, "%s\n", trace_st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%lld trace events, %lld dropped)\n",
                trace_out.c_str(),
                static_cast<long long>(TraceSession::Global().recorded()),
                static_cast<long long>(TraceSession::Global().dropped()));
  }

  const Status st = report.WriteJsonFile(out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu configs)\n", out_path.c_str(),
              report.configs.size());
  return 0;
}

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) { return lispoison::Run(argc, argv); }
