// Attack-construction throughput: the incremental landscape engine and
// the parallel RMI poisoner against their pre-refactor rebuild-per-round
// references, on the key distributions the paper evaluates (clustered /
// OSM-like dense runs, log-normal skew, sparse uniform).
//
// Run the acceptance configuration and commit the JSON trajectory:
//   ./bench_attack_throughput --benchmark_out=BENCH_attack_throughput.json \
//       --benchmark_out_format=json
// CI smoke-runs this binary with a small --benchmark_filter +
// --benchmark_min_time cap; the committed JSON comes from a full run.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "attack/deletion_attack.h"
#include "attack/greedy_poisoner.h"
#include "attack/rmi_poisoner.h"
#include "common/rng.h"
#include "data/generators.h"
#include "data/keyset.h"

namespace lispoison {
namespace {

/// Threads actually used for a num_threads setting (0 = one per core).
double ResolvedThreads(std::int64_t num_threads) {
  if (num_threads > 0) return static_cast<double>(num_threads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1.0 : static_cast<double>(hw);
}

/// ROADMAP: every throughput JSON records the machine's core count and
/// the thread setting so multi-core trajectories stay interpretable.
void ReportThreads(benchmark::State& state, std::int64_t num_threads) {
  state.counters["hardware_concurrency"] =
      ResolvedThreads(0);
  state.counters["num_threads"] = ResolvedThreads(num_threads);
}

enum Dataset : std::int64_t {
  kDenseRuns = 0,  // Contiguous ID runs far apart (Section VI's dense
                   // clusters; sequential IDs / timestamps with holes).
  kUniform = 1,    // Sparse uniform over a wide domain.
  kLogNormal = 2,  // The paper's skewed synthetic workload.
};

/// Deterministic keyset cache so every engine benchmarks the same keys.
const KeySet& CachedKeyset(Dataset dataset, std::int64_t n) {
  static std::map<std::pair<std::int64_t, std::int64_t>, KeySet>* cache =
      new std::map<std::pair<std::int64_t, std::int64_t>, KeySet>();
  const auto key = std::make_pair(static_cast<std::int64_t>(dataset), n);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  Rng rng(0xC0FFEE + static_cast<std::uint64_t>(dataset));
  Result<KeySet> ks = Status::Internal("unset");
  switch (dataset) {
    case kDenseRuns: {
      // 50 contiguous runs separated by equally sized holes: long dense
      // stretches with few maximal gaps, the regime of real learned-index
      // keys (sequential IDs, timestamps, OSM latitudes).
      const std::int64_t runs = 50;
      const std::int64_t run_len = n / runs;
      std::vector<Key> keys;
      keys.reserve(static_cast<std::size_t>(n));
      Key cursor = 0;
      for (std::int64_t b = 0; b < runs; ++b) {
        for (std::int64_t i = 0; i < run_len; ++i) keys.push_back(cursor + i);
        cursor += 2 * run_len;  // run, then an equally long hole.
      }
      ks = KeySet::Create(std::move(keys), KeyDomain{0, cursor});
      break;
    }
    case kUniform:
      ks = GenerateUniform(n, KeyDomain{0, 100 * n}, &rng);
      break;
    case kLogNormal:
      ks = GenerateLogNormal(n, KeyDomain{0, 100 * n}, &rng);
      break;
  }
  if (!ks.ok()) {
    std::fprintf(stderr, "keyset generation failed: %s\n",
                 ks.status().message().c_str());
    std::abort();
  }
  return cache->emplace(key, std::move(*ks)).first->second;
}

void ReportGreedy(benchmark::State& state, const GreedyPoisonResult& r,
                  std::int64_t p) {
  state.counters["poisons_per_sec"] = benchmark::Counter(
      static_cast<double>(p), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["ratio_loss"] = r.RatioLoss();
}

/// Argmax work per attack construction (one full greedy run / one RMI
/// attack): exact Theorem 1 evaluations and gaps pruned by the bound
/// pre-pass. Deterministic per configuration, so the committed baseline
/// JSON doubles as the PR-over-PR record of the pruning win.
void ReportArgmax(benchmark::State& state,
                  const LossLandscape::ArgmaxStats& stats) {
  state.counters["exact_evals"] = static_cast<double>(stats.exact_evals);
  state.counters["bound_evals"] = static_cast<double>(stats.bound_evals);
  state.counters["pruned_gaps"] = static_cast<double>(stats.pruned_gaps);
  state.counters["cached_bounds"] =
      static_cast<double>(stats.cached_bounds);
  state.counters["invalidated_gaps"] =
      static_cast<double>(stats.invalidated_gaps);
  state.counters["fallback_rounds"] =
      static_cast<double>(stats.fallback_rounds);
}

void BM_GreedyPoisonCdf_Incremental(benchmark::State& state) {
  const auto dataset = static_cast<Dataset>(state.range(0));
  const std::int64_t n = state.range(1);
  const std::int64_t p = state.range(2);
  const std::int64_t num_threads = state.range(3);
  const bool prune = state.range(4) != 0;
  const bool cache = state.range(5) != 0;
  const KeySet& ks = CachedKeyset(dataset, n);
  AttackOptions options;
  options.num_threads = static_cast<int>(num_threads);
  options.prune_argmax = prune;
  options.cache_argmax = cache;
  GreedyPoisonResult last;
  for (auto _ : state) {
    auto r = GreedyPoisonCdf(ks, p, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      break;
    }
    last = std::move(*r);
    benchmark::DoNotOptimize(last.poisoned_loss);
  }
  ReportGreedy(state, last, p);
  ReportArgmax(state, last.argmax_stats);
  ReportThreads(state, num_threads);
}

void BM_GreedyPoisonCdf_Reference(benchmark::State& state) {
  const auto dataset = static_cast<Dataset>(state.range(0));
  const std::int64_t n = state.range(1);
  const std::int64_t p = state.range(2);
  const KeySet& ks = CachedKeyset(dataset, n);
  GreedyPoisonResult last;
  for (auto _ : state) {
    auto r = GreedyPoisonCdfReference(ks, p);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      break;
    }
    last = std::move(*r);
    benchmark::DoNotOptimize(last.poisoned_loss);
  }
  ReportGreedy(state, last, p);
  ReportThreads(state, 1);
}

// ---------------------------------------------------------------------------
// Update-stream attacks (paper §V): deletion and modification on the
// persistent incremental engine vs the rebuild-per-round references.
// The "poisons"/ratio counters keep the insertion benches' names so the
// golden-structure and compare tooling treats every attack uniformly
// (a "poison" here is one committed removal / relocation).
// ---------------------------------------------------------------------------

void BM_GreedyDeleteCdf_Incremental(benchmark::State& state) {
  const auto dataset = static_cast<Dataset>(state.range(0));
  const std::int64_t n = state.range(1);
  const std::int64_t d = state.range(2);
  const std::int64_t num_threads = state.range(3);
  const bool prune = state.range(4) != 0;
  const bool cache = state.range(5) != 0;
  const KeySet& ks = CachedKeyset(dataset, n);
  AttackOptions options;
  options.num_threads = static_cast<int>(num_threads);
  options.prune_argmax = prune;
  options.cache_argmax = cache;
  DeletionAttackResult last;
  for (auto _ : state) {
    auto r = GreedyDeleteCdf(ks, d, /*deletable=*/{}, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      break;
    }
    last = std::move(*r);
    benchmark::DoNotOptimize(last.attacked_loss);
  }
  state.counters["poisons_per_sec"] = benchmark::Counter(
      static_cast<double>(d), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["ratio_loss"] = last.RatioLoss();
  ReportArgmax(state, last.argmax_stats);
  // Block-local removal-SoA commit cost: the per-commit quotient is the
  // O(sqrt(n)) scaling evidence the --attack-10m gate holds across the
  // n=100k -> n=10M rows.
  state.counters["rem_touched_slots"] =
      static_cast<double>(last.removal_commit_touched_slots);
  state.counters["rem_commits"] =
      static_cast<double>(last.removal_commits);
  ReportThreads(state, num_threads);
}

void BM_GreedyDeleteCdf_Reference(benchmark::State& state) {
  const auto dataset = static_cast<Dataset>(state.range(0));
  const std::int64_t n = state.range(1);
  const std::int64_t d = state.range(2);
  const KeySet& ks = CachedKeyset(dataset, n);
  DeletionAttackResult last;
  for (auto _ : state) {
    auto r = GreedyDeleteCdfReference(ks, d);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      break;
    }
    last = std::move(*r);
    benchmark::DoNotOptimize(last.attacked_loss);
  }
  state.counters["poisons_per_sec"] = benchmark::Counter(
      static_cast<double>(d), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["ratio_loss"] = last.RatioLoss();
  ReportThreads(state, 1);
}

void BM_GreedyModifyCdf_Incremental(benchmark::State& state) {
  const auto dataset = static_cast<Dataset>(state.range(0));
  const std::int64_t n = state.range(1);
  const std::int64_t moves = state.range(2);
  const std::int64_t num_threads = state.range(3);
  const bool prune = state.range(4) != 0;
  const bool cache = state.range(5) != 0;
  const KeySet& ks = CachedKeyset(dataset, n);
  AttackOptions options;
  options.num_threads = static_cast<int>(num_threads);
  options.prune_argmax = prune;
  options.cache_argmax = cache;
  ModificationAttackResult last;
  for (auto _ : state) {
    auto r = GreedyModifyCdf(ks, moves, /*movable=*/{}, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      break;
    }
    last = std::move(*r);
    benchmark::DoNotOptimize(last.attacked_loss);
  }
  state.counters["poisons_per_sec"] = benchmark::Counter(
      static_cast<double>(moves),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["ratio_loss"] = last.RatioLoss();
  ReportArgmax(state, last.argmax_stats);
  state.counters["rem_touched_slots"] =
      static_cast<double>(last.removal_commit_touched_slots);
  state.counters["rem_commits"] =
      static_cast<double>(last.removal_commits);
  ReportThreads(state, num_threads);
}

void BM_GreedyModifyCdf_Reference(benchmark::State& state) {
  const auto dataset = static_cast<Dataset>(state.range(0));
  const std::int64_t n = state.range(1);
  const std::int64_t moves = state.range(2);
  const KeySet& ks = CachedKeyset(dataset, n);
  ModificationAttackResult last;
  for (auto _ : state) {
    auto r = GreedyModifyCdfReference(ks, moves);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      break;
    }
    last = std::move(*r);
    benchmark::DoNotOptimize(last.attacked_loss);
  }
  state.counters["poisons_per_sec"] = benchmark::Counter(
      static_cast<double>(moves),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["ratio_loss"] = last.RatioLoss();
  ReportThreads(state, 1);
}

void BM_PoisonRmi_Incremental(benchmark::State& state) {
  const auto dataset = static_cast<Dataset>(state.range(0));
  const std::int64_t n = state.range(1);
  const std::int64_t num_models = state.range(2);
  const int num_threads = static_cast<int>(state.range(3));
  const bool prune = state.range(4) != 0;
  const bool cache = state.range(5) != 0;
  const KeySet& ks = CachedKeyset(dataset, n);
  RmiAttackOptions opts;
  opts.poison_fraction = 0.10;
  opts.num_models = num_models;
  opts.num_threads = num_threads;
  opts.prune_argmax = prune;
  opts.cache_argmax = cache;
  for (auto _ : state) {
    auto r = PoisonRmi(ks, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(r->poisoned_rmi_loss);
    state.counters["rmi_ratio_loss"] = r->rmi_ratio_loss;
    state.counters["exchanges"] = static_cast<double>(r->exchanges_applied);
    ReportArgmax(state, r->argmax_stats);
  }
  ReportThreads(state, num_threads);
}

void BM_PoisonRmi_Reference(benchmark::State& state) {
  const auto dataset = static_cast<Dataset>(state.range(0));
  const std::int64_t n = state.range(1);
  const std::int64_t num_models = state.range(2);
  const KeySet& ks = CachedKeyset(dataset, n);
  RmiAttackOptions opts;
  opts.poison_fraction = 0.10;
  opts.num_models = num_models;
  for (auto _ : state) {
    auto r = PoisonRmiReference(ks, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      break;
    }
    benchmark::DoNotOptimize(r->poisoned_rmi_loss);
    state.counters["rmi_ratio_loss"] = r->rmi_ratio_loss;
    state.counters["exchanges"] = static_cast<double>(r->exchanges_applied);
  }
  ReportThreads(state, 1);
}

// Acceptance configuration: n=100k, p=1000 greedy; n=100k, 200 models
// RMI. Smaller variants first so CI smoke filters stay cheap. The
// incremental configs carry a num_threads arg (1 = serial argmax, 0 =
// one worker per core), a prune arg (1 = branch-and-bound pruned
// argmax, 0 = exhaustive), and a cache arg (1 = incremental bound
// cache, 0 = per-round full pre-pass) — the prune-off and cache-off
// siblings of the sparse configs keep the exact_evals and bound_evals
// reductions measurable PR-over-PR from the committed JSON alone
// (tools/check_bench_json.py asserts the >= 10x bound_evals drop on the
// committed baseline's sparse cache pairs).
BENCHMARK(BM_GreedyPoisonCdf_Incremental)
    ->Unit(benchmark::kMillisecond)
    ->Args({kDenseRuns, 10000, 100, 1, 1, 1})
    ->Args({kDenseRuns, 10000, 100, 1, 1, 0})
    ->Args({kDenseRuns, 10000, 100, 1, 0, 0})
    ->Args({kDenseRuns, 100000, 1000, 1, 1, 1})
    ->Args({kLogNormal, 100000, 1000, 1, 1, 1})
    ->Args({kLogNormal, 100000, 1000, 1, 1, 0})
    ->Args({kLogNormal, 100000, 1000, 1, 0, 0})
    ->Args({kLogNormal, 100000, 1000, 0, 1, 1})
    ->Args({kUniform, 100000, 1000, 1, 1, 1})
    ->Args({kUniform, 100000, 1000, 1, 1, 0})
    ->Args({kUniform, 100000, 1000, 1, 0, 0})
    ->Args({kUniform, 100000, 1000, 0, 1, 1})
    // ISSUE 9 scale row: n=10M (no reference sibling — the
    // rebuild-per-round baseline needs O(p*n) work per run and would
    // take hours; the --attack-10m gate instead holds the per-commit
    // counters sublinear against the n=100k rows). Excluded from the
    // CI smoke filter, present in the committed full-run JSON.
    ->Args({kUniform, 10000000, 200, 1, 1, 1});
BENCHMARK(BM_GreedyPoisonCdf_Reference)
    ->Unit(benchmark::kMillisecond)
    ->Args({kDenseRuns, 10000, 100})
    ->Args({kDenseRuns, 100000, 1000})
    ->Args({kLogNormal, 100000, 1000})
    ->Args({kUniform, 100000, 1000});
// Update-stream configs: same 6-arg layout as the insertion attacks
// (dataset, n, budget, threads, prune, cache). The cache arm of the
// removal argmax is the block-chord tiered scan (one bound per
// 128-candidate block, per-key re-scoring only in surviving blocks);
// ISSUE 5's acceptance gate (>= 10x deletion wall-clock vs the
// rebuild-per-round reference at n=100k) is asserted on the committed
// JSON by tools/check_bench_json.py.
BENCHMARK(BM_GreedyDeleteCdf_Incremental)
    ->Unit(benchmark::kMillisecond)
    ->Args({kDenseRuns, 10000, 100, 1, 1, 1})
    ->Args({kDenseRuns, 10000, 100, 1, 1, 0})
    ->Args({kDenseRuns, 10000, 100, 1, 0, 0})
    ->Args({kUniform, 100000, 200, 1, 1, 1})
    ->Args({kUniform, 100000, 200, 1, 1, 0})
    ->Args({kUniform, 100000, 200, 1, 0, 0})
    ->Args({kUniform, 100000, 200, 0, 1, 1})
    ->Args({kLogNormal, 100000, 200, 1, 1, 1})
    // ISSUE 9 scale row: same d=200 budget as the n=100k rows so the
    // per-commit SoA touched-slot quotient is directly comparable.
    ->Args({kUniform, 10000000, 200, 1, 1, 1});
BENCHMARK(BM_GreedyDeleteCdf_Reference)
    ->Unit(benchmark::kMillisecond)
    ->Args({kDenseRuns, 10000, 100})
    ->Args({kUniform, 100000, 200})
    ->Args({kLogNormal, 100000, 200});
BENCHMARK(BM_GreedyModifyCdf_Incremental)
    ->Unit(benchmark::kMillisecond)
    ->Args({kDenseRuns, 10000, 50, 1, 1, 1})
    ->Args({kDenseRuns, 10000, 50, 1, 1, 0})
    ->Args({kDenseRuns, 10000, 50, 1, 0, 0})
    ->Args({kUniform, 100000, 100, 1, 1, 1})
    ->Args({kUniform, 100000, 100, 0, 1, 1});
BENCHMARK(BM_GreedyModifyCdf_Reference)
    ->Unit(benchmark::kMillisecond)
    ->Args({kDenseRuns, 10000, 50})
    ->Args({kUniform, 100000, 100});
// Dense runs saturate the per-model budget at paper scale (most models
// own a fully contiguous span with no interior candidate), so the RMI
// configurations use the paper's skewed and uniform workloads.
BENCHMARK(BM_PoisonRmi_Incremental)
    ->Unit(benchmark::kMillisecond)
    ->Args({kDenseRuns, 10000, 20, 1, 1, 1})
    ->Args({kLogNormal, 100000, 200, 1, 1, 1})
    ->Args({kLogNormal, 100000, 200, 1, 1, 0})
    ->Args({kLogNormal, 100000, 200, 1, 0, 0})
    ->Args({kLogNormal, 100000, 200, 0, 1, 1})
    ->Args({kUniform, 100000, 200, 1, 1, 1})
    ->Args({kUniform, 100000, 200, 1, 1, 0})
    ->Args({kUniform, 100000, 200, 1, 0, 0});
BENCHMARK(BM_PoisonRmi_Reference)
    ->Unit(benchmark::kMillisecond)
    ->Args({kDenseRuns, 10000, 20})
    ->Args({kLogNormal, 100000, 200})
    ->Args({kUniform, 100000, 200});

}  // namespace
}  // namespace lispoison

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "hardware_concurrency",
      std::to_string(std::thread::hardware_concurrency()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
