#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Guards the attack-construction throughput trajectory
(BENCH_attack_throughput.json) PR-over-PR: a fresh run of
bench_attack_throughput is diffed against the committed baseline and the
script exits non-zero when the incremental engines regress by more than
the threshold.

Two metrics:

  speedup (default): for every *_Incremental benchmark, find its
    *_Reference sibling *within the same file* and compute
    speedup = reference_time / incremental_time. Speedups are
    machine-independent (both sides ran on the same box), so a fresh CI
    run is comparable to a baseline recorded on different hardware. A
    regression means the incremental engine lost ground against the
    rebuild-per-round reference.

  time: directly compare real_time per benchmark name. Only meaningful
    when both files come from the same machine class; used for local
    before/after checks.

Benchmarks present in only one file are reported but never fatal (the
suite grows over time). Usage:

  tools/bench_compare.py BASELINE.json FRESH.json \
      [--threshold 0.20] [--metric speedup|time] [--filter REGEX]
"""

import argparse
import json
import re
import sys


def load_benchmarks(path):
    """name -> metric for every entry of a benchmark or serving report.

    google-benchmark JSON ("benchmarks" array): real_time per entry.

    bench_serving report ("configs" array): one entry per
    workload/backend/variant, valued at the *mean work per op* — the
    deterministic latency proxy (probes/comparisons). Work totals for
    insert-free mixes are bit-reproducible across machines and thread
    counts, so --metric time over serving reports gates real serving
    regressions without wall-clock noise (gate read-only mixes via
    --filter; insert-bearing mixes race on backend state).
    """
    with open(path) as f:
        data = json.load(f)
    out = {}
    if "configs" in data:
        for cfg in data["configs"]:
            name = f"{cfg['workload']}/{cfg['backend']}/{cfg['variant']}"
            # Sharded arms (PR 6) share workload/backend/variant names
            # with the single-backend runs; suffix the shard count so
            # they pair only with their own kind across files.
            if cfg.get("num_shards", 1) != 1:
                name += f"/s{cfg['num_shards']}"
            out[name] = float(cfg["work"]["mean"])
        return out
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = float(bench["real_time"])
    return out


def reference_sibling(name, benchmarks):
    """Maps BM_X_Incremental/args to its BM_X_Reference entry.

    The incremental configs may carry trailing args the reference lacks
    (num_threads since PR 2, the argmax prune flag since PR 3); try the
    full arg list first, then drop trailing args one at a time until a
    reference entry matches.
    """
    if "_Incremental" not in name:
        return None
    parts = name.replace("_Incremental", "_Reference").split("/")
    while parts:
        candidate = "/".join(parts)
        if candidate in benchmarks:
            return candidate
        parts.pop()
    return None


def speedups(benchmarks):
    """name -> reference_time / incremental_time for paired entries."""
    out = {}
    for name, time in benchmarks.items():
        ref = reference_sibling(name, benchmarks)
        if ref is not None and time > 0:
            out[name] = benchmarks[ref] / time
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="fatal relative regression (0.20 = 20%%)")
    parser.add_argument("--metric", choices=("speedup", "time"),
                        default="speedup")
    parser.add_argument("--filter", default="Incremental",
                        help="regex; only matching benchmarks are gated")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    fresh = load_benchmarks(args.fresh)
    pattern = re.compile(args.filter)

    if args.metric == "speedup":
        base_metric, fresh_metric = speedups(baseline), speedups(fresh)
        better = "x vs reference"
    else:
        # For times, lower is better: invert so "ratio < 1 - threshold
        # means regression" holds for both metrics.
        base_metric = {k: 1.0 / v for k, v in baseline.items() if v > 0}
        fresh_metric = {k: 1.0 / v for k, v in fresh.items() if v > 0}
        better = " (1/ms)"

    shared = sorted(k for k in base_metric if k in fresh_metric
                    and pattern.search(k))
    skipped = sorted(k for k in set(base_metric) ^ set(fresh_metric)
                     if pattern.search(k))

    if not shared:
        print("bench_compare: no overlapping benchmarks match "
              f"'{args.filter}' — nothing to gate", file=sys.stderr)
        for name in skipped:
            print(f"  unpaired: {name}", file=sys.stderr)
        return 0

    failures = []
    for name in shared:
        base, new = base_metric[name], fresh_metric[name]
        ratio = new / base if base > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            failures.append(name)
        print(f"{status:>10}  {name}: {base:.3f} -> {new:.3f}{better} "
              f"({(ratio - 1.0) * 100.0:+.1f}%)")
    for name in skipped:
        print(f"{'unpaired':>10}  {name} (present in one file only)")

    if failures:
        print(f"\nbench_compare: {len(failures)} benchmark(s) regressed "
              f"more than {args.threshold:.0%}:", file=sys.stderr)
        for name in failures:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"\nbench_compare: {len(shared)} benchmark(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        sys.exit(0)
