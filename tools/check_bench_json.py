#!/usr/bin/env python3
"""Golden-structure check for the bench_attack_throughput smoke JSON.

Runs the bench binary on a small smoke configuration and asserts the
report shape the rest of the tooling depends on:

  * every incremental entry carries the argmax work counters
    (exact_evals / bound_evals / pruned_gaps / cached_bounds /
    invalidated_gaps / fallback_rounds) plus the threading metadata
    (num_threads, hardware_concurrency);
  * prune on/off and cache on/off siblings of the same configuration
    agree on the attack outcome (ratio_loss) — neither pruning nor the
    tiered bound cache may ever change results;
  * the cache-on arm's bound/exact work stays within a bounded factor
    of the cache-off pre-pass even on dense configs, and the prune-off
    arm does no bound work at all;
  * tools/bench_compare.py can pair every incremental entry with its
    reference sibling and compute speedups (the CI regression gate).

With a second argument — the committed BENCH_attack_throughput.json —
it additionally asserts the committed-trajectory acceptance criteria:

  * ISSUE 4: on the sparse n=100k insertion configs (uniform and
    log-normal, serial, pruned) the cache-on arm's bound_evals are
    >= 10x below the cache-off arm's;
  * ISSUE 5: the incremental GreedyDeleteCdf at n=100k is >= 10x faster
    (wall-clock) than the rebuild-per-round deletion reference, with
    outcome-identical prune/cache arms.

The update-stream configs (BM_GreedyDeleteCdf_*, BM_GreedyModifyCdf_*)
share the 6-arg (dataset, n, budget, threads, prune, cache) layout and
the full counter contract: the removal argmax's cache mode is the
block-chord tiered scan, whose cached/invalidated counters obey the
same disposition invariant as the insertion tier cache.

Registered as a ctest (bench_attack_json_golden) so the structure is
checked by the tier-1 suite, including the sanitizer matrix. Usage:

  tools/check_bench_json.py /path/to/bench_attack_throughput \
      [BENCH_attack_throughput.json]

Serving-scaling mode (PR 6) gates the committed multi-core scaling
curve instead (registered as the bench_serving_scaling_golden ctest):

  tools/check_bench_json.py --serving-scaling BENCH_serving_scaling.json

It asserts the read-throughput rows are sorted and monotone
non-degrading up to the recording box's core count with >= 0.7x ideal
speedup at the top in-core thread count, and that the insert arms prove
the "no insert pays a retrain" contract (async inline_compactions == 0
with compactions >= 1, sync inline, async worst insert latency below
sync's).

Serving-timeseries mode (PR 7) gates the telemetry sections of the
committed BENCH_serving_smoke.json (bench_serving_timeseries_golden):

  tools/check_bench_json.py --serving-timeseries BENCH_serving_smoke.json

It asserts the time_series rows are contiguous and monotone in time
with nonnegative counter deltas that sum exactly to the totals block
(the sampler's telescoping identity, for counters and histogram counts
alike), that the serving/driver/attack instrument families all moved,
and that the telemetry_overhead arms prove the read path is unchanged
(mean_work_ratio within 3% of 1.0) and the wall-clock cost is bounded
(throughput_ratio >= 0.8 vs the runtime-off arm).

Attack-10M mode (ISSUE 9) gates the committed n=10M scale rows
(bench_attack_10m_golden):

  tools/check_bench_json.py --attack-10m BENCH_attack_throughput.json

It asserts the 10M insertion/deletion rows exist with the full counter
set and that the block-local removal SoA's per-commit touched slots
grew <= 20x from the n=100k deletion row (sqrt(100) = 10x ideal for a
100x larger keyset; a flat-array regression shows ~100x).

Adversarial mode (PR 8) gates the committed BENCH_adversarial.json
(bench_adversarial_golden):

  tools/check_bench_json.py --adversarial BENCH_adversarial.json [--live]

Structural checks (always): the run raced >= 2 driver threads against
the attacker with async compaction only (sync_compaction false,
inline_compactions == 0), at least one victim retrain landed inside
the attack window and the adversary both observed retrains and
replanned; the poisoning-ROI rows are contiguous with a monotone
attacker_ops_cum that telescopes row by row, and the attacker-op
accounting agrees three ways — sum of per-row attacker_ops ==
adversary.inserts + deletes + modifies (the op partition) == the
adversary.* telemetry counter totals. Wall-clock checks (skipped with
--live, for fresh smoke runs on noisy CI boxes): attacked read p99 >=
clean read p99, attacked mean work/op >= clean, and the attack was
sustained (>= 2 ROI rows with attacker ops in them).

The degraded-mode arm (ISSUE 10, --fault-plan=SEED on the bench;
required in the committed artifact, checked when present on --live
smokes): with every rebuild fault-armed to fail, the backend must have
shed inserts at the overlay hard cap with the telescoping identity
exact (backend.shed_inserts == driver.inserts_shed + adversary.shed),
reads must have stayed fully available (read count matches the clean
arm's stream), and after the storm was disarmed every shard recovered
(degraded_shards_end == 0). Committed-only wall-clock floor: degraded
read throughput >= 0.25x the clean arm — availability priced, not
promised.
"""

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402  (sibling module, after path setup)

GREEDY_INCREMENTAL = "BM_GreedyPoisonCdf_Incremental"
DELETE_INCREMENTAL = "BM_GreedyDeleteCdf_Incremental"
DELETE_REFERENCE = "BM_GreedyDeleteCdf_Reference"
# Greedy-family incremental benches that must carry the full counter
# set (the RMI benches use their own outcome counter names).
COUNTER_BENCHES = (
    GREEDY_INCREMENTAL,
    DELETE_INCREMENTAL,
    "BM_GreedyModifyCdf_Incremental",
)
REQUIRED_COUNTERS = (
    "exact_evals",
    "bound_evals",
    "pruned_gaps",
    "cached_bounds",
    "invalidated_gaps",
    "fallback_rounds",
    "num_threads",
    "hardware_concurrency",
    "poisons_per_sec",
    "ratio_loss",
)


def split_args(name):
    """'BM_X/1/100000/1000/1/1/0' -> ('BM_X', (1, 100000, 1000, 1, 1, 0))."""
    parts = name.split("/")
    return parts[0], tuple(int(p) for p in parts[1:])


def sibling(entries, name, arg_index, value):
    """The entry whose name matches `name` except args[arg_index] == value."""
    base, args = split_args(name)
    target = list(args)
    target[arg_index] = value
    for other in entries:
        other_base, other_args = split_args(other)
        if other_base == base and other_args == tuple(target):
            return other
    return None


def outcome(entry):
    """The attack-outcome counter: greedy and RMI configs name it
    differently."""
    return entry.get("ratio_loss", entry.get("rmi_ratio_loss"))


def check_entries(entries, require_pairs):
    """Outcome-identity and counter checks over incremental entries.

    Incremental args are (dataset, n, p_or_models, threads, prune, cache).
    Returns (prune_pairs, cache_pairs).
    """
    prune_pairs = cache_pairs = 0
    for name, entry in entries.items():
        base, args = split_args(name)
        if "_Incremental" not in base or len(args) != 6:
            continue
        prune, cache = args[4], args[5]
        if prune == 0:
            assert entry["bound_evals"] == 0, f"{name} (prune off) scored bounds"
            assert entry["cached_bounds"] == 0 and entry["invalidated_gaps"] == 0, (
                f"{name} (prune off) touched the tier cache counters"
            )
        if prune == 1:
            # A pruned arm that silently degenerates to the exhaustive
            # fallback every round would pass the outcome checks; it
            # must actually score bounds.
            assert entry["bound_evals"] > 0, (
                f"{name} (prune on) never scored a bound"
            )
        if prune == 1 and cache == 0:
            assert entry["cached_bounds"] == 0 and entry["invalidated_gaps"] == 0, (
                f"{name} (cache off) touched the tier cache counters"
            )
        if prune == 1 and cache == 1:
            assert entry["cached_bounds"] + entry["invalidated_gaps"] > 0, (
                f"{name} (cache on) never dispositioned a gap"
            )
        # Prune pair: same config, prune flipped (cache-off arms).
        if prune == 1 and cache == 0:
            off_name = sibling(entries, name, 4, 0)
            if off_name is not None:
                off = entries[off_name]
                prune_pairs += 1
                assert outcome(entry) == outcome(off), (
                    f"pruning changed the attack outcome: {name}"
                )
                assert entry["exact_evals"] <= off["exact_evals"], (
                    f"pruning increased exact evaluations: {name}"
                )
        # Cache pair: same pruned config, cache flipped.
        if prune == 1 and cache == 1:
            off_name = sibling(entries, name, 5, 0)
            if off_name is not None:
                off = entries[off_name]
                cache_pairs += 1
                assert outcome(entry) == outcome(off), (
                    f"the bound cache changed the attack outcome: {name}"
                )
                # Dense configs (few gaps, few skippable tiers) may pay
                # a bounded overhead; the >= 10x sparse win is asserted
                # on the committed baseline below.
                assert entry["bound_evals"] <= off["bound_evals"] * 2, (
                    f"the tiered cache blew up bound work: {name}"
                )
                assert entry["exact_evals"] <= off["exact_evals"] * 2, (
                    f"the tiered cache blew up exact evaluations: {name}"
                )
    if require_pairs:
        assert prune_pairs > 0, "no prune on/off sibling pair found"
        assert cache_pairs > 0, "no cache on/off sibling pair found"
    return prune_pairs, cache_pairs


def load_entries(path_or_report):
    if isinstance(path_or_report, str):
        with open(path_or_report) as f:
            report = json.load(f)
    else:
        report = path_or_report
    return {
        b["name"]: b
        for b in report.get("benchmarks", [])
        if b.get("run_type") != "aggregate"
    }


def check_committed_baseline(path):
    """Committed-trajectory acceptance gates (ISSUE 4 + ISSUE 5)."""
    entries = load_entries(path)
    sparse = [
        f"{GREEDY_INCREMENTAL}/{dataset}/100000/1000/1/1/1"
        for dataset in (1, 2)  # kUniform, kLogNormal
    ]
    checked = 0
    for name in sparse:
        assert name in entries, f"committed baseline lacks {name}"
        off_name = sibling(entries, name, 5, 0)
        assert off_name is not None, f"committed baseline lacks {name}'s cache-off arm"
        on, off = entries[name], entries[off_name]
        assert on["bound_evals"] * 10 <= off["bound_evals"], (
            f"committed baseline: cache-on bound_evals not >=10x below "
            f"cache-off for {name} ({on['bound_evals']} vs {off['bound_evals']})"
        )
        assert on["ratio_loss"] == off["ratio_loss"], (
            f"committed baseline: cache changed the outcome for {name}"
        )
        checked += 1

    # ISSUE 5: deletion on the incremental engine >= 10x the
    # rebuild-per-round reference wall-clock at n=100k, outcomes
    # identical across the prune/cache arms.
    deletion_gates = 0
    for dataset in (1, 2):  # kUniform, kLogNormal
        inc_name = f"{DELETE_INCREMENTAL}/{dataset}/100000/200/1/1/1"
        ref_name = f"{DELETE_REFERENCE}/{dataset}/100000/200"
        assert inc_name in entries, f"committed baseline lacks {inc_name}"
        assert ref_name in entries, f"committed baseline lacks {ref_name}"
        inc_time = float(entries[inc_name]["real_time"])
        ref_time = float(entries[ref_name]["real_time"])
        assert inc_time * 10 <= ref_time, (
            f"committed baseline: incremental deletion not >=10x faster "
            f"than the reference for dataset {dataset} "
            f"({inc_time:.3f} vs {ref_time:.3f})"
        )
        assert (
            entries[inc_name]["ratio_loss"] == entries[ref_name]["ratio_loss"]
        ), f"committed baseline: deletion outcome drifted for {inc_name}"
        deletion_gates += 1

    check_entries(entries, require_pairs=True)
    print(
        f"committed baseline OK: {checked} sparse cache pairs >= 10x, "
        f"{deletion_gates} deletion wall-clock gates >= 10x"
    )


def check_serving_scaling(path):
    """Gate for the committed BENCH_serving_scaling.json (PR 6)."""
    with open(path) as f:
        report = json.load(f)
    env = report["environment"]
    hw = int(env["hardware_concurrency"])
    assert hw >= 1, "scaling report lacks hardware_concurrency"

    rows = report["read_scaling"]
    assert rows, "scaling report has no read_scaling rows"
    threads = [int(r["threads"]) for r in rows]
    assert threads == sorted(set(threads)), (
        f"read_scaling rows must be sorted by distinct thread count: {threads}"
    )
    assert threads[0] == 1, "read_scaling must include the 1-thread baseline"
    for row in rows:
        assert float(row["reads_per_sec"]) > 0, (
            f"non-positive throughput at {row['threads']} threads"
        )
        assert int(row["read_latency_ns"]["count"]) > 0, (
            f"empty read latency histogram at {row['threads']} threads"
        )
    # Work totals are the machine-independent identity check: the same
    # read-only stream must do the same probes at every thread count.
    works = {int(r["total_work"]) for r in rows}
    assert len(works) == 1, f"read work drifted across thread counts: {works}"

    # Gate only the rows that fit the recording box: oversubscribed rows
    # (threads > hardware_concurrency) document the trend but time-slice
    # one core and cannot be held to scaling floors.
    in_core = [r for r in rows if int(r["threads"]) <= hw]
    assert in_core, "no read_scaling row fits the recording machine"
    for prev, cur in zip(in_core, in_core[1:]):
        prev_tput = float(prev["reads_per_sec"])
        cur_tput = float(cur["reads_per_sec"])
        assert cur_tput >= prev_tput * 0.9, (
            f"read throughput degraded from {prev['threads']} to "
            f"{cur['threads']} threads: {prev_tput:.0f} -> {cur_tput:.0f}"
        )
    base = float(in_core[0]["reads_per_sec"])
    top = in_core[-1]
    top_threads = int(top["threads"])
    speedup = float(top["reads_per_sec"]) / base
    assert speedup >= 0.7 * top_threads, (
        f"speedup at {top_threads} in-core threads is {speedup:.2f}x, "
        f"below the 0.7x-ideal floor ({0.7 * top_threads:.2f}x)"
    )

    arms = {a["mode"]: a for a in report["insert_arms"]}
    assert "async" in arms and "sync" in arms, (
        f"insert arms must cover async and sync: {sorted(arms)}"
    )
    for arm in arms.values():
        assert int(arm["inserts"]) > 0, f"{arm['mode']} arm ran no inserts"
        assert int(arm["insert_failures"]) == 0, (
            f"{arm['mode']} arm dropped inserts"
        )
        assert int(arm["compactions"]) >= 1, (
            f"{arm['mode']} arm never compacted — the insert mix is too light"
        )
    assert int(arms["async"]["inline_compactions"]) == 0, (
        "async arm charged a compaction to an inserting thread"
    )
    assert int(arms["sync"]["inline_compactions"]) >= 1, (
        "sync arm never compacted inline — escape hatch broken"
    )
    # Latency evidence: the async arm's *mean* insert must beat the
    # sync arm's retrain-amortized mean. The worst case is reported but
    # not gated — on an oversubscribed recorder (1 driver thread per
    # core plus the maintenance thread) a single preemption during a
    # background rebuild can land in one async insert, and that noise
    # would flake re-records; the deterministic inline_compactions == 0
    # counter above is the real "no insert pays a retrain" proof.
    async_max = int(arms["async"]["insert_latency_ns"]["max"])
    sync_max = int(arms["sync"]["insert_latency_ns"]["max"])
    assert async_max > 0 and sync_max > 0, "insert arm recorded no latency"
    async_mean = float(arms["async"]["insert_latency_ns"]["mean"])
    sync_mean = float(arms["sync"]["insert_latency_ns"]["mean"])
    assert 0 < async_mean < sync_mean, (
        f"async mean insert ({async_mean:.0f} ns) must beat the sync "
        f"arm's retrain-amortized mean ({sync_mean:.0f} ns)"
    )

    print(
        f"serving scaling OK: {len(rows)} thread counts "
        f"({len(in_core)} in-core on a {hw}-core recorder), "
        f"{speedup:.2f}x speedup at {top_threads} thread(s), async mean "
        f"insert {async_mean:.0f} ns vs sync {sync_mean:.0f} ns"
    )


def check_serving_timeseries(path):
    """Gate for the telemetry sections of BENCH_serving_smoke.json (PR 7)."""
    with open(path) as f:
        report = json.load(f)
    assert report.get("configs"), "serving report has no configs"

    ts = report.get("time_series")
    assert ts is not None, "serving report lacks the time_series section"
    rows = ts["rows"]
    assert rows, "time_series has no rows"

    counter_sums = {}
    hist_sums = {}
    prev_end = rows[0]["t_start_ns"]
    for i, row in enumerate(rows):
        assert row["t_start_ns"] == prev_end, (
            f"row {i} is not contiguous with its predecessor "
            f"({row['t_start_ns']} != {prev_end})"
        )
        assert row["t_end_ns"] >= row["t_start_ns"], (
            f"row {i} has a negative-duration interval"
        )
        prev_end = row["t_end_ns"]
        for name, delta in row["counters"].items():
            assert delta >= 0, f"row {i}: counter {name} went backwards"
            counter_sums[name] = counter_sums.get(name, 0) + delta
        for name, hist in row["histograms"].items():
            assert hist["count"] >= 0, f"row {i}: histogram {name} negative"
            hist_sums[name] = hist_sums.get(name, 0) + hist["count"]

    # The telescoping identity: per-interval deltas sum exactly to the
    # run totals, for counters and histogram counts alike.
    totals = ts["totals"]
    assert counter_sums == totals["counters"], (
        "interval counter deltas do not sum to totals: "
        f"{counter_sums} vs {totals['counters']}"
    )
    for name, count in totals["histogram_counts"].items():
        assert hist_sums.get(name, 0) == count, (
            f"interval histogram counts for {name} do not sum to the "
            f"total ({hist_sums.get(name, 0)} vs {count})"
        )

    # Every instrumented engine actually moved during the matrix run.
    for family in ("serving.", "driver.", "attack."):
        moved = sum(v for k, v in counter_sums.items() if k.startswith(family))
        assert moved > 0, f"no {family}* counter moved across the whole run"

    overhead = report.get("telemetry_overhead")
    assert overhead is not None, "serving report lacks telemetry_overhead"
    work_ratio = float(overhead["mean_work_ratio"])
    assert abs(work_ratio - 1.0) <= 0.03, (
        f"telemetry changed read-path work: mean_work_ratio {work_ratio}"
    )
    tput_ratio = float(overhead["throughput_ratio"])
    assert tput_ratio >= 0.8, (
        f"telemetry-enabled read throughput fell below the 0.8x budget "
        f"vs the runtime-off arm ({tput_ratio:.3f})"
    )

    print(
        f"serving time-series OK: {len(rows)} rows, "
        f"{len(counter_sums)} counters telescoping to totals, "
        f"work ratio {work_ratio:.4f}, throughput ratio {tput_ratio:.3f}"
    )


def check_adversarial(path, live):
    """Gate for the committed BENCH_adversarial.json (PR 8 + ISSUE 10).

    With live=True (a fresh smoke run on a CI box) only the structural
    and accounting identities are asserted; the wall-clock degradation
    floors are reserved for the committed artifact. The committed
    artifact must additionally carry the --fault-plan degraded arm,
    whose shed-telescoping / read-availability / full-recovery
    invariants are checked whenever the section is present.
    """
    with open(path) as f:
        report = json.load(f)
    env = report["environment"]
    assert int(env["num_threads"]) >= 2, (
        "the adversarial run must race >= 2 legitimate driver threads"
    )
    assert not env["sync_compaction"], (
        "the adversarial run must use async compaction (no escape hatch)"
    )

    attacked = report["attacked"]
    assert int(attacked["inline_compactions"]) == 0, (
        "attacked arm charged a compaction to a foreground thread"
    )
    assert int(attacked["compactions"]) >= 1, (
        "no victim retrain landed inside the attack window — the stream "
        "is too light to exercise the retrain-and-replan loop"
    )
    assert int(attacked["reads"]) > 0, "attacked arm served no reads"
    assert int(report["clean"]["reads"]) > 0, "clean arm served no reads"

    adv = report["adversary"]
    op_total = int(adv["inserts"]) + int(adv["deletes"]) + int(adv["modifies"])
    assert op_total > 0, "the adversary landed no operations"
    assert int(adv["replans"]) >= 1, (
        "the adversary never replanned — retrain awareness is broken"
    )
    assert int(adv["retrains_observed"]) >= 1, (
        "the adversary never observed a retrain at its poll points"
    )
    assert int(adv["live_poison_keys"]) > 0, "no poison keys survived"

    # Attacker-op accounting, identity 1: the adversary.* telemetry
    # counter totals must equal the result struct's op partition.
    totals = report["time_series"]["totals"]["counters"]
    for name, expect in (
        ("adversary.inserts", int(adv["inserts"])),
        ("adversary.deletes", int(adv["deletes"])),
        ("adversary.modifies", int(adv["modifies"])),
        ("adversary.rejected", int(adv["rejected"])),
        ("adversary.replans", int(adv["replans"])),
    ):
        assert totals.get(name, 0) == expect, (
            f"telemetry total {name}={totals.get(name, 0)} disagrees with "
            f"the adversary result ({expect})"
        )

    rows = report["roi"]["rows"]
    assert rows, "the report has no poisoning-ROI rows"
    prev_end = rows[0]["t_start_ns"]
    cum = 0
    row_ops = row_rejected = row_replans = row_compactions = 0
    for i, row in enumerate(rows):
        assert row["t_start_ns"] == prev_end, (
            f"ROI row {i} is not contiguous with its predecessor"
        )
        assert row["t_end_ns"] >= row["t_start_ns"], (
            f"ROI row {i} has a negative-duration interval"
        )
        prev_end = row["t_end_ns"]
        ops = int(row["attacker_ops"])
        assert ops >= 0, f"ROI row {i}: attacker_ops went backwards"
        cum += ops
        assert int(row["attacker_ops_cum"]) == cum, (
            f"ROI row {i}: attacker_ops_cum does not telescope "
            f"({row['attacker_ops_cum']} vs {cum})"
        )
        row_ops += ops
        row_rejected += int(row["attacker_rejected"])
        row_replans += int(row["replans"])
        row_compactions += int(row["compactions"])
        if int(row["reads"]) > 0:
            assert int(row["read_p99_ns"]) > 0, (
                f"ROI row {i} sampled reads but recorded no p99"
            )

    # Identity 2: per-row attacker ops sum to the op partition (which
    # identity 1 already tied to the telemetry totals).
    assert row_ops == op_total, (
        f"ROI rows account for {row_ops} attacker ops but the adversary "
        f"executed {op_total}"
    )
    assert row_rejected == int(adv["rejected"]), (
        "per-row rejected deltas do not telescope to the adversary total"
    )
    assert row_replans == int(adv["replans"]), (
        "per-row replan deltas do not telescope to the adversary total"
    )
    assert row_compactions == int(attacked["compactions"]), (
        f"per-row compaction deltas ({row_compactions}) do not telescope "
        f"to the attack-window total ({attacked['compactions']})"
    )

    # The degraded-mode arm (ISSUE 10): required on the committed
    # artifact, checked whenever present. Reads must never shed — the
    # degraded arm serves the exact same read stream as the clean arm —
    # and the shed ledger must telescope exactly across every caller.
    degraded = report.get("degraded")
    if not live:
        assert degraded is not None, (
            "committed report lacks the --fault-plan degraded arm"
        )
    if degraded is not None:
        assert int(degraded["reads"]) > 0, "degraded arm served no reads"
        assert int(degraded["reads"]) == int(report["clean"]["reads"]), (
            f"degraded arm served {degraded['reads']} reads vs the clean "
            f"arm's {report['clean']['reads']} — reads are never shed, so "
            "the full stream must have been answered"
        )
        backend = degraded["backend"]
        deg_adv = degraded["adversary"]
        shed_total = int(backend["shed_inserts"])
        assert shed_total > 0, (
            "degraded arm shed nothing — the fault plan never drove the "
            "overlay into its hard cap, so admission control went untested"
        )
        assert shed_total == (
            int(degraded["inserts_shed"]) + int(deg_adv["shed"])
        ), (
            f"shed ledger does not telescope: backend shed {shed_total} "
            f"but driver+adversary account for "
            f"{int(degraded['inserts_shed']) + int(deg_adv['shed'])}"
        )
        assert int(degraded["insert_failures"]) >= int(
            degraded["inserts_shed"]
        ), (
            "driver recorded fewer insert failures than sheds — a shed "
            "insert must surface as a failed op, not a silent success"
        )
        assert int(backend["degraded_shards_end"]) == 0, (
            f"{backend['degraded_shards_end']} shard(s) still degraded "
            "after the storm was disarmed and drained — recovery is broken"
        )
        if not live:
            assert int(backend["compaction_giveups"]) >= 1, (
                "committed degraded arm recorded no compaction give-ups — "
                "the fault plan never collapsed maintenance"
            )
            clean_tput = float(report["clean"]["throughput_ops_per_sec"])
            deg_tput = float(degraded["throughput_ops_per_sec"])
            assert deg_tput >= 0.25 * clean_tput, (
                f"committed degraded arm throughput ({deg_tput:.0f} ops/s) "
                f"fell below the 0.25x availability floor vs the clean arm "
                f"({clean_tput:.0f} ops/s)"
            )

    if not live:
        clean_p99 = int(report["roi"]["clean_read_p99_ns"])
        attacked_p99 = int(report["roi"]["attacked_read_p99_ns"])
        assert clean_p99 > 0, "committed run recorded no clean read p99"
        assert attacked_p99 >= clean_p99, (
            f"committed run: poisoned read p99 ({attacked_p99} ns) below "
            f"the clean baseline ({clean_p99} ns) — the attack did nothing"
        )
        assert float(report["roi"]["mean_work_ratio"]) >= 1.0, (
            "committed run: attacked mean work/op below the clean arm's"
        )
        active = sum(1 for r in rows if int(r["attacker_ops"]) > 0)
        assert active >= 2, (
            f"committed run: attack confined to {active} interval(s) — "
            "not a sustained stream racing live traffic"
        )

    mode = "live" if live else "committed"
    deg_note = (
        f", degraded arm: {degraded['backend']['shed_inserts']} sheds "
        f"telescoping, full recovery"
        if degraded is not None
        else ""
    )
    print(
        f"adversarial {mode} OK: {len(rows)} ROI rows, {op_total} attacker "
        f"ops telescoping (rows == result == telemetry), "
        f"{row_compactions} mid-attack retrains, {adv['replans']} replans, "
        f"p99 ratio {float(report['roi']['p99_ratio']):.2f}{deg_note}"
    )


def check_attack_10m(path):
    """Gate for the committed n=10M scale rows (ISSUE 9).

    Usage: tools/check_bench_json.py --attack-10m BENCH_attack_throughput.json

    Asserts the committed full-run JSON carries the n=10M insertion and
    deletion rows with the full argmax counter set, that the deletion
    rows surface the block-local removal-SoA commit accounting
    (rem_touched_slots / rem_commits), and that the per-commit touched
    slots grew sublinearly from n=100k to n=10M: the ideal O(sqrt(n))
    ratio is sqrt(100) = 10x for a 100x larger keyset, gated at <= 20x
    (2x slack for block-count rounding); a flat-array regression would
    show ~100x and fail loudly.
    """
    entries = load_entries(path)
    big_insert = f"{GREEDY_INCREMENTAL}/1/10000000/200/1/1/1"
    big_delete = f"{DELETE_INCREMENTAL}/1/10000000/200/1/1/1"
    small_delete = f"{DELETE_INCREMENTAL}/1/100000/200/1/1/1"
    for name in (big_insert, big_delete, small_delete):
        assert name in entries, f"committed baseline lacks the scale row {name}"
    for name in (big_insert, big_delete):
        entry = entries[name]
        for counter in REQUIRED_COUNTERS:
            assert counter in entry, f"{name} is missing counter {counter}"
        assert float(entry["ratio_loss"]) > 1.0, (
            f"{name}: the attack did not degrade the loss at n=10M"
        )
        assert float(entry["bound_evals"]) > 0, (
            f"{name}: the pruned argmax never scored a bound at n=10M"
        )

    def per_commit(name):
        entry = entries[name]
        for counter in ("rem_touched_slots", "rem_commits"):
            assert counter in entry, f"{name} is missing counter {counter}"
        commits = float(entry["rem_commits"])
        assert commits > 0, f"{name}: no removal commits recorded"
        return float(entry["rem_touched_slots"]) / commits

    small = per_commit(small_delete)
    big = per_commit(big_delete)
    assert small > 0, f"{small_delete}: zero per-commit touched slots"
    ratio = big / small
    assert ratio <= 20.0, (
        f"block-local removal commits are no longer O(sqrt(n)): per-commit "
        f"touched slots grew {ratio:.1f}x from n=100k ({small:.0f}) to "
        f"n=10M ({big:.0f}); the sqrt scaling bound is 10x (gated at 20x)"
    )
    print(
        f"attack 10M OK: scale rows present, per-commit touched slots "
        f"{small:.0f} @ 100k -> {big:.0f} @ 10M ({ratio:.1f}x, "
        f"sqrt bound 10x, gate 20x)"
    )


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--serving-scaling":
        check_serving_scaling(sys.argv[2])
        return 0
    if len(sys.argv) == 3 and sys.argv[1] == "--serving-timeseries":
        check_serving_timeseries(sys.argv[2])
        return 0
    if len(sys.argv) == 3 and sys.argv[1] == "--attack-10m":
        check_attack_10m(sys.argv[2])
        return 0
    if len(sys.argv) in (3, 4) and sys.argv[1] == "--adversarial":
        assert len(sys.argv) == 3 or sys.argv[3] == "--live", (
            f"unknown --adversarial option {sys.argv[3]}"
        )
        check_adversarial(sys.argv[2], live=len(sys.argv) == 4)
        return 0
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    bench = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "smoke.json")
        subprocess.run(
            [
                bench,
                # Dense n=10^4 greedy-family configs only (insertion,
                # deletion, modification prune/cache arms + references):
                # cheap enough for sanitizer builds. The trailing slash
                # anchors the arg — google-benchmark filters are
                # unanchored partial-match regexes, and a bare /0/10000
                # would also match the ~2 s/iter n=100000 configs.
                "--benchmark_filter="
                "BM_Greedy(Poison|Delete|Modify)Cdf.*/0/10000/",
                "--benchmark_min_time=0.05",
                "--benchmark_out=" + out,
                "--benchmark_out_format=json",
            ],
            check=True,
        )
        with open(out) as f:
            report = json.load(f)

    entries = load_entries(report)
    assert entries, "smoke run produced no benchmark entries"
    assert "hardware_concurrency" in report.get("context", {}), (
        "context must record hardware_concurrency"
    )

    incremental = {
        k: v
        for k, v in entries.items()
        if any(bench in k for bench in COUNTER_BENCHES)
    }
    assert incremental, "no greedy-family incremental entries in the smoke run"
    for bench in COUNTER_BENCHES:
        assert any(bench in k for k in incremental), (
            f"no {bench} entries in the smoke run"
        )
    for name, entry in incremental.items():
        for counter in REQUIRED_COUNTERS:
            assert counter in entry, f"{name} is missing counter {counter}"

    prune_pairs, cache_pairs = check_entries(entries, require_pairs=True)

    # The CI regression gate must be able to pair and rate every
    # incremental entry despite the extra trailing args.
    times = {k: float(v["real_time"]) for k, v in entries.items()}
    speedups = bench_compare.speedups(times)
    missing = [k for k in incremental if k not in speedups]
    assert not missing, f"bench_compare cannot pair: {missing}"

    print(
        f"bench JSON golden OK: {len(incremental)} incremental entries, "
        f"{prune_pairs} prune pair(s), {cache_pairs} cache pair(s), "
        f"{len(speedups)} speedup(s)"
    )

    if len(sys.argv) == 3:
        check_committed_baseline(sys.argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main())
