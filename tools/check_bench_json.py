#!/usr/bin/env python3
"""Golden-structure check for the bench_attack_throughput smoke JSON.

Runs the bench binary on a small smoke configuration and asserts the
report shape the rest of the tooling depends on:

  * every incremental entry carries the argmax work counters
    (exact_evals / bound_evals / pruned_gaps / fallback_rounds) plus the
    threading metadata (num_threads, hardware_concurrency);
  * prune-on and prune-off siblings of the same configuration agree on
    the attack outcome (ratio_loss) — pruning must never change results;
  * tools/bench_compare.py can pair every incremental entry with its
    reference sibling and compute speedups (the CI regression gate).

Registered as a ctest (bench_attack_json_golden) so the structure is
checked by the tier-1 suite, including the sanitizer matrix. Usage:

  tools/check_bench_json.py /path/to/bench_attack_throughput
"""

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_compare  # noqa: E402  (sibling module, after path setup)

GREEDY_INCREMENTAL = "BM_GreedyPoisonCdf_Incremental"
REQUIRED_COUNTERS = (
    "exact_evals",
    "bound_evals",
    "pruned_gaps",
    "fallback_rounds",
    "num_threads",
    "hardware_concurrency",
    "poisons_per_sec",
    "ratio_loss",
)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    bench = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "smoke.json")
        subprocess.run(
            [
                bench,
                # Dense n=10^4 greedy configs only (prune on + off +
                # reference): cheap enough for sanitizer builds. The
                # trailing slash anchors the arg — google-benchmark
                # filters are unanchored partial-match regexes, and a
                # bare /0/10000 would also match the ~2 s/iter n=100000
                # configs.
                "--benchmark_filter=BM_GreedyPoisonCdf.*/0/10000/",
                "--benchmark_min_time=0.05",
                "--benchmark_out=" + out,
                "--benchmark_out_format=json",
            ],
            check=True,
        )
        with open(out) as f:
            report = json.load(f)

    entries = {
        b["name"]: b
        for b in report.get("benchmarks", [])
        if b.get("run_type") != "aggregate"
    }
    assert entries, "smoke run produced no benchmark entries"
    assert "hardware_concurrency" in report.get("context", {}), (
        "context must record hardware_concurrency"
    )

    incremental = {k: v for k, v in entries.items() if GREEDY_INCREMENTAL in k}
    assert incremental, f"no {GREEDY_INCREMENTAL} entries in the smoke run"
    for name, entry in incremental.items():
        for counter in REQUIRED_COUNTERS:
            assert counter in entry, f"{name} is missing counter {counter}"

    # Prune on/off siblings (…/threads/1 vs …/threads/0) must agree on
    # the attack outcome; the prune-off arm reports zero bound work.
    prune_pairs = 0
    for name, entry in incremental.items():
        if not name.endswith("/0"):
            continue
        sibling = incremental.get(name[: -len("/0")] + "/1")
        if sibling is None:
            continue
        prune_pairs += 1
        assert entry["ratio_loss"] == sibling["ratio_loss"], (
            f"pruning changed the attack outcome: {name}"
        )
        assert entry["bound_evals"] == 0, f"{name} (prune off) scored bounds"
        assert sibling["bound_evals"] > 0, (
            f"{sibling} (prune on) never scored a bound"
        )
        assert sibling["exact_evals"] <= entry["exact_evals"], (
            f"pruning increased exact evaluations: {name}"
        )
    assert prune_pairs > 0, "no prune on/off sibling pair in the smoke run"

    # The CI regression gate must be able to pair and rate every
    # incremental entry despite the extra trailing args.
    times = {k: float(v["real_time"]) for k, v in entries.items()}
    speedups = bench_compare.speedups(times)
    missing = [k for k in incremental if k not in speedups]
    assert not missing, f"bench_compare cannot pair: {missing}"

    print(
        f"bench JSON golden OK: {len(incremental)} incremental entries, "
        f"{prune_pairs} prune pair(s), {len(speedups)} speedup(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
