#!/usr/bin/env python3
"""Validator for the Chrome trace_event JSON that TraceSession exports.

Checks the structural contract the exporter promises (and that
chrome://tracing / ui.perfetto.dev silently depend on):

  * top level is {"traceEvents": [...], "displayTimeUnit": ...};
  * every event carries name / cat / ph / ts / pid / tid, with ph in
    {B, E, i} and cat drawn from the closed category set the C++ enum
    defines (serving, driver, attack, bench);
  * per tid, timestamps are monotone non-decreasing (each ring is a
    single-writer log; the exporter must preserve its order);
  * per tid, B/E events obey stack discipline and balance exactly —
    the exporter drops unmatched halves of spans whose partner fell off
    the drop-oldest ring, so an imbalance here means export-side
    corruption, not ring overflow;
  * instant events carry the thread scope ("s": "t").

Two modes:

  tools/check_trace_json.py /path/to/trace.json
  tools/check_trace_json.py --run /path/to/bench_serving

--run executes a bench_serving smoke configuration with --trace-out
into a temp dir and validates the file it wrote end-to-end (the ctest
bench_serving_trace_golden registration), so the gate covers recording
under real serving churn, not just a hand-written document.
"""

import json
import os
import subprocess
import sys
import tempfile

KNOWN_CATEGORIES = {"serving", "driver", "attack", "bench"}
KNOWN_PHASES = {"B", "E", "i"}
REQUIRED_FIELDS = ("name", "cat", "ph", "ts", "pid", "tid")


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    assert isinstance(doc, dict), "trace document must be a JSON object"
    assert "traceEvents" in doc, "trace document lacks traceEvents"
    events = doc["traceEvents"]
    assert isinstance(events, list), "traceEvents must be an array"
    assert events, "trace has no events — the smoke run must emit spans"

    by_tid = {}
    for i, ev in enumerate(events):
        for field in REQUIRED_FIELDS:
            assert field in ev, f"event {i} lacks {field}: {ev}"
        assert ev["ph"] in KNOWN_PHASES, f"event {i} has phase {ev['ph']!r}"
        assert ev["cat"] in KNOWN_CATEGORIES, (
            f"event {i} has unknown category {ev['cat']!r}"
        )
        assert isinstance(ev["name"], str) and ev["name"], (
            f"event {i} has an empty name"
        )
        assert float(ev["ts"]) >= 0, f"event {i} has negative ts"
        if ev["ph"] == "i":
            assert ev.get("s") == "t", (
                f"instant event {i} lacks thread scope: {ev}"
            )
        by_tid.setdefault(ev["tid"], []).append(ev)

    spans = 0
    for tid, tid_events in sorted(by_tid.items()):
        prev_ts = None
        stack = []
        for ev in tid_events:
            ts = float(ev["ts"])
            if prev_ts is not None:
                assert ts >= prev_ts, (
                    f"tid {tid}: ts went backwards "
                    f"({prev_ts} -> {ts} at {ev['name']!r})"
                )
            prev_ts = ts
            if ev["ph"] == "B":
                stack.append(ev)
            elif ev["ph"] == "E":
                assert stack, (
                    f"tid {tid}: E event {ev['name']!r} with no open span"
                )
                begin = stack.pop()
                assert begin["name"] == ev["name"], (
                    f"tid {tid}: span crossing — B {begin['name']!r} "
                    f"closed by E {ev['name']!r}"
                )
                spans += 1
        assert not stack, (
            f"tid {tid}: {len(stack)} unclosed span(s): "
            f"{[ev['name'] for ev in stack]}"
        )
    assert spans > 0, "trace contains no complete B/E span"

    instants = sum(1 for ev in events if ev["ph"] == "i")
    cats = sorted({ev["cat"] for ev in events})
    print(
        f"trace JSON OK: {len(events)} events, {spans} spans, "
        f"{instants} instants across {len(by_tid)} thread(s), "
        f"categories {cats}"
    )


def run_and_check(bench):
    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "trace.json")
        out = os.path.join(tmp, "report.json")
        subprocess.run(
            [
                bench,
                "--smoke",
                "--keys=4000",
                "--ops=2000",
                "--threads=2",
                "--compact-threshold=64",
                "--trace-out=" + trace,
                "--out=" + out,
            ],
            check=True,
        )
        check_trace(trace)


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--run":
        run_and_check(sys.argv[2])
        return 0
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    check_trace(sys.argv[1])
    return 0


if __name__ == "__main__":
    sys.exit(main())
